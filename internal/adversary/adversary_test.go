package adversary_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/model"
)

var planParams = adversary.Params{
	N:           6,
	Horizon:     400,
	MaxFailures: 3,
	CrashStart:  1,
	CrashEnd:    100,
}

// catalog is one instance of every adversary in the package, as the registry
// constructs them.
func catalog() []adversary.Adversary {
	return []adversary.Adversary{
		adversary.UniformCrashes{},
		adversary.TargetedCrashes{},
		adversary.TargetedCrashes{AtFraction: 1},
		adversary.CascadeCrashes{},
		adversary.LateBurstCrashes{},
		adversary.HealingPartition{},
		adversary.SkewedDelays{},
		adversary.DuplicateStorm{},
		adversary.BurstLoss{},
	}
}

// TestPlansAreDeterministicAndWellFormed pins the package contract: identical
// (adversary, seed) pairs yield identical schedules, and every schedule stays
// within the failure budget, the process range and the horizon.
func TestPlansAreDeterministicAndWellFormed(t *testing.T) {
	for _, adv := range catalog() {
		for seed := int64(1); seed <= 20; seed++ {
			first := adv.PlanCrashes(rand.New(rand.NewSource(seed)), planParams)
			second := adv.PlanCrashes(rand.New(rand.NewSource(seed)), planParams)
			if !reflect.DeepEqual(first, second) {
				t.Fatalf("%s seed %d: schedule not deterministic", adv.Name(), seed)
			}
			if len(first) > planParams.MaxFailures {
				t.Errorf("%s seed %d: %d crashes exceed budget %d", adv.Name(), seed, len(first), planParams.MaxFailures)
			}
			seen := map[model.ProcID]bool{}
			for _, cr := range first {
				if cr.Time < 1 || cr.Time > planParams.Horizon {
					t.Errorf("%s seed %d: crash time %d outside [1,%d]", adv.Name(), seed, cr.Time, planParams.Horizon)
				}
				if int(cr.Proc) < 0 || int(cr.Proc) >= planParams.N {
					t.Errorf("%s seed %d: victim %d out of range", adv.Name(), seed, cr.Proc)
				}
				if seen[cr.Proc] {
					t.Errorf("%s seed %d: victim %d crashes twice", adv.Name(), seed, cr.Proc)
				}
				seen[cr.Proc] = true
			}
		}
	}
}

// TestTargetedCrashesHitTheCoordinators checks the targeting: the victims are
// exactly the lowest-numbered processes, early or on the final step.
func TestTargetedCrashesHitTheCoordinators(t *testing.T) {
	early := adversary.TargetedCrashes{}.PlanCrashes(nil, planParams)
	if len(early) != planParams.MaxFailures {
		t.Fatalf("targeted: got %d crashes, want %d", len(early), planParams.MaxFailures)
	}
	for i, cr := range early {
		if cr.Proc != model.ProcID(i) || cr.Time != planParams.CrashStart {
			t.Errorf("targeted victim %d: got (p%d, t%d), want (p%d, t%d)", i, cr.Proc, cr.Time, i, planParams.CrashStart)
		}
	}
	final := adversary.TargetedCrashes{AtFraction: 1}.PlanCrashes(nil, planParams)
	for _, cr := range final {
		if cr.Time != planParams.Horizon {
			t.Errorf("targeted-final: crash of %d at %d, want horizon %d", cr.Proc, cr.Time, planParams.Horizon)
		}
	}
}

// TestCascadeCrashesAreCorrelated checks the avalanche shape: sorted crash
// times follow the trigger at the configured interval until clamped.
func TestCascadeCrashesAreCorrelated(t *testing.T) {
	adv := adversary.CascadeCrashes{Interval: 3}
	crashes := adv.PlanCrashes(rand.New(rand.NewSource(7)), planParams)
	if len(crashes) != planParams.MaxFailures {
		t.Fatalf("cascade: got %d crashes, want %d", len(crashes), planParams.MaxFailures)
	}
	for i := 1; i < len(crashes); i++ {
		gap := crashes[i].Time - crashes[i-1].Time
		if gap != 3 && crashes[i].Time != planParams.Horizon {
			t.Errorf("cascade: gap %d between crash %d and %d, want 3", gap, i-1, i)
		}
	}
}

// TestLateBurstCrashesLandLate checks that every crash hits the final window.
func TestLateBurstCrashesLandLate(t *testing.T) {
	adv := adversary.LateBurstCrashes{Window: 0.1}
	earliest := planParams.Horizon - planParams.Horizon/10
	for seed := int64(1); seed <= 20; seed++ {
		for _, cr := range adv.PlanCrashes(rand.New(rand.NewSource(seed)), planParams) {
			if cr.Time < earliest {
				t.Errorf("seed %d: crash at %d precedes the final window start %d", seed, cr.Time, earliest)
			}
		}
	}
}

// TestShaperVerdicts pins the per-link decisions of each channel shaper.
func TestShaperVerdicts(t *testing.T) {
	link := func(now int, from, to model.ProcID) adversary.Link {
		return adversary.Link{Now: now, From: from, To: to, N: 6, Horizon: 400}
	}

	partition := adversary.HealingPartition{HealFraction: 0.5}
	if v := partition.Shape(nil, link(10, 0, 5)); !v.Drop {
		t.Errorf("partition: cross-partition message before heal not dropped")
	}
	if v := partition.Shape(nil, link(10, 0, 1)); v.Drop {
		t.Errorf("partition: same-side message dropped")
	}
	if v := partition.Shape(nil, link(200, 0, 5)); v.Drop {
		t.Errorf("partition: message after heal dropped")
	}

	skew := adversary.SkewedDelays{SlowExtra: 4}
	if v := skew.Shape(nil, link(10, 5, 0)); v.ExtraDelay != 4 {
		t.Errorf("skew: high-to-low link delay %d, want 4", v.ExtraDelay)
	}
	if v := skew.Shape(nil, link(10, 0, 5)); v.ExtraDelay != 0 {
		t.Errorf("skew: low-to-high link delayed by %d", v.ExtraDelay)
	}
	if skew.MaxExtraDelay() != 4 {
		t.Errorf("skew: MaxExtraDelay %d, want 4", skew.MaxExtraDelay())
	}

	dup := adversary.DuplicateStorm{Probability: 1, Copies: 3}
	if v := dup.Shape(rand.New(rand.NewSource(1)), link(10, 0, 1)); v.Duplicates != 3 {
		t.Errorf("duplicate-storm: got %d duplicates, want 3", v.Duplicates)
	}

	burst := adversary.BurstLoss{Period: 40, StormLen: 15, StormDrop: 1}
	if v := burst.Shape(rand.New(rand.NewSource(1)), link(41, 0, 1)); !v.Drop {
		t.Errorf("burst-loss: in-storm message not dropped at certainty")
	}
	if v := burst.Shape(rand.New(rand.NewSource(1)), link(20, 0, 1)); v.Drop {
		t.Errorf("burst-loss: quiet-phase message dropped")
	}
}
