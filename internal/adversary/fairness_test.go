package adversary_test

import (
	"testing"

	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/workload"
)

// violationsOfRule filters validation output down to one run condition.
func violationsOfRule(vs []model.Violation, rule string) []model.Violation {
	var out []model.Violation
	for _, v := range vs {
		if v.Rule == rule {
			out = append(out, v)
		}
	}
	return out
}

// TestBurstLossRegimeStaysFair is the condition-R5 regression for the
// burst-loss channel regime: storms drop most traffic, but the fairness
// bound still forces persistently retransmitted messages through, so the
// channel remains fair-lossy, the finite-trace R5 heuristic stays clean, and
// the strong-detector protocol still coordinates.
func TestBurstLossRegimeStaysFair(t *testing.T) {
	sc := registry.MustScenario("adv-burst-loss-strong-udc")
	for _, seed := range workload.Seeds(11, 5) {
		res, err := workload.Execute(sc.Spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Stats.MessagesDropped == 0 {
			t.Errorf("seed %d: no drops recorded; the storm regime is not biting", seed)
		}
		if res.Stats.MessagesDelivered == 0 {
			t.Errorf("seed %d: nothing delivered; fairness bound not forcing messages through", seed)
		}
		if r5 := violationsOfRule(model.Validate(res.Run, model.DefaultValidateOptions()), "R5"); len(r5) != 0 {
			t.Errorf("seed %d: burst loss broke channel fairness: %v", seed, r5[0])
		}
		if vs := sc.Eval(res.Run); len(vs) != 0 {
			t.Errorf("seed %d: UDC violated under burst loss: %v", seed, vs[0])
		}
	}
}

// TestDuplicateStormIsAbsorbed is the condition-R5 regression for the
// duplication regime, and records the one run condition duplication *does*
// step outside: extra copies violate R3's receive/send counting (the checker
// flags them), while fairness R5 stays intact and the do-once semantics of
// performed actions absorb every repeated delivery, keeping nUDC clean.
func TestDuplicateStormIsAbsorbed(t *testing.T) {
	sc := registry.MustScenario("adv-duplicate-storm-nudc")
	duplicated, r3Flagged := 0, 0
	for _, seed := range workload.Seeds(23, 5) {
		res, err := workload.Execute(sc.Spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		duplicated += res.Stats.MessagesDuplicated
		all := model.Validate(res.Run, model.DefaultValidateOptions())
		if r5 := violationsOfRule(all, "R5"); len(r5) != 0 {
			t.Errorf("seed %d: duplication broke channel fairness: %v", seed, r5[0])
		}
		if len(violationsOfRule(all, "R3")) != 0 {
			r3Flagged++
		}
		if vs := sc.Eval(res.Run); len(vs) != 0 {
			t.Errorf("seed %d: nUDC violated under duplication: %v", seed, vs[0])
		}
	}
	if duplicated == 0 {
		t.Errorf("no duplicates injected across seeds; the storm regime is not biting")
	}
	if r3Flagged == 0 {
		t.Errorf("duplication never tripped the R3 counting check; expected extra copies to step outside R3")
	}
}

// TestTargetedFinalBreaksStrongCompleteness demonstrates an expected
// detector-property violation under a targeted-crash adversary: crashes on
// the final step land after the last detector report (the scenario's report
// period does not divide its horizon), so even the perfect detector cannot
// satisfy the finite-trace reading of strong completeness, while strong
// accuracy — which would have to be sacrificed to fix it — stays intact.
func TestTargetedFinalBreaksStrongCompleteness(t *testing.T) {
	sc := registry.MustScenario("adv-targeted-final-fd")
	if !sc.Stress {
		t.Fatalf("adv-targeted-final-fd must be marked as a stress scenario")
	}
	for _, seed := range workload.Seeds(1, 3) {
		res, err := workload.Execute(sc.Spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faulty := res.Run.Faulty()
		if faulty.Count() == 0 {
			t.Fatalf("seed %d: targeted adversary crashed nobody", seed)
		}
		for _, q := range faulty.Members() {
			if ct, ok := res.Run.CrashTime(q); !ok || ct != sc.Spec.MaxSteps {
				t.Errorf("seed %d: victim %d crashed at %d, want final step %d", seed, q, ct, sc.Spec.MaxSteps)
			}
		}
		if vs := fd.CheckStrongAccuracy(res.Run); len(vs) != 0 {
			t.Errorf("seed %d: perfect detector lost strong accuracy: %v", seed, vs[0])
		}
		if vs := fd.CheckStrongCompleteness(res.Run); len(vs) == 0 {
			t.Errorf("seed %d: expected strong-completeness violations under final-step crashes, found none", seed)
		}
	}
}

// TestHealingPartitionHeals checks that coordination completes despite the
// pre-heal partition: the UDC check of the scenario passes and messages do
// get dropped while the partition is up.
func TestHealingPartitionHeals(t *testing.T) {
	sc := registry.MustScenario("adv-healing-partition-quorum-udc")
	for _, seed := range workload.Seeds(5, 3) {
		res, err := workload.Execute(sc.Spec, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Stats.MessagesDropped == 0 {
			t.Errorf("seed %d: partition dropped nothing", seed)
		}
		if vs := sc.Eval(res.Run); len(vs) != 0 {
			t.Errorf("seed %d: UDC violated despite the heal: %v", seed, vs[0])
		}
	}
}
