// Package adversary provides deterministic, seedable fault and network
// schedules for the simulator.  The paper's results are quantified over
// failure patterns and environments: a failure detector is a function of the
// failure pattern, and which detector class suffices for uniform distributed
// coordination depends on which failure patterns the environment admits
// (Table 1).  A simulator that only injects uniform-random crashes and a
// single fair-lossy regime therefore explores a thin slice of the space the
// theorems range over.  This package names the interesting corners of that
// space and lets the engine consult them instead of a hard-coded sampler.
//
// An Adversary plans the failure pattern of one run (which processes crash,
// and when).  An adversary that additionally implements ChannelShaper also
// decides the fate of every message — drop, delay, duplicate — on a per-link
// basis.  Implementations must be immutable after construction: one adversary
// value is shared by every worker of a parallel sweep and consulted on the
// simulator's hot path, so all per-run randomness must come from the *rand.Rand
// passed in, and all decisions must be pure functions of (call arguments,
// adversary configuration).  Identical (adversary, seed) pairs always yield
// identical schedules.
//
// # Catalog and paper grounding
//
//   - UniformCrashes: the baseline sampler (a uniformly random subset of
//     processes crashing at uniformly random times in the crash window).
//     It reproduces the historical inline sampler draw-for-draw, so runs of
//     pre-existing scenarios are byte-identical.
//   - TargetedCrashes: crashes exactly the processes coordination leans on —
//     by default the lowest-numbered ones, which are the first rotating
//     coordinators and the earliest action initiators.  With AtFraction=1 the
//     crashes land on the final step of the run, after the last detector
//     report, which makes the finite-trace reading of "eventually permanently
//     suspects" (strong completeness, Section 2.2) unsatisfiable: no report
//     can suspect a process that has not yet crashed without violating
//     strong accuracy.
//   - CascadeCrashes: a correlated failure avalanche — one trigger crash and
//     the remaining victims following at fixed short intervals.  The paper's
//     environments bound only the number of failures, not their correlation,
//     so sufficiency claims must survive temporal clustering.
//   - LateBurstCrashes: every failure strikes in the final fraction of the
//     horizon, long after detectors and protocols have settled, stressing the
//     bounded-horizon interpretation of the completeness properties.
//   - HealingPartition: drops cross-partition traffic until a heal time.  The
//     partition is soft: the engine's fairness bound (condition R5) still
//     forces every message that keeps being retransmitted through eventually,
//     so the regime stays within the paper's fair-lossy channel model while
//     approximating the classical worst case for quorum- and relay-based
//     coordination.
//   - SkewedDelays: asymmetric per-link delays (links from higher- to
//     lower-numbered processes are slow).  The paper's model is fully
//     asynchronous, so no protocol or detector conversion may depend on
//     delivery symmetry; this schedule surfaces accidental timing
//     assumptions.
//   - DuplicateStorm: delivers extra copies of messages.  Duplication steps
//     outside run condition R3's send/receive counting discipline, which is
//     exactly the point: performed-action idempotence (the do-once semantics
//     of Do) must absorb it even though the run conditions do not.
//   - BurstLoss: periodic loss storms (windows of near-total loss between
//     quiet phases).  Within a storm almost everything is dropped, but the
//     fairness bound keeps the channel fair-lossy in the sense of R5, so
//     UDC-sufficient detector/protocol pairs must still coordinate.
//
// Every catalog entry is registered by name in internal/registry and exposed
// through "udcsim -adversary" and "udcsim -list-adversaries"; the adv-*
// scenario family pairs each schedule with the detector and checker it
// stresses, and the violations a schedule provokes (strong completeness
// breaking under TargetedCrashes at the final step, for instance) are
// recorded sweep results, locked by tests, rather than assumptions.
package adversary
