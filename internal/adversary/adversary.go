package adversary

import (
	"math/rand"

	"repro/internal/model"
)

// Params describes the shape of the run an adversary plans against.  The
// workload layer resolves its spec defaults (crash window bounds, failure
// budget) before handing the parameters over, so adversaries never re-derive
// them.
type Params struct {
	// N is the number of processes.
	N int
	// Horizon is the run length in steps.
	Horizon int
	// MaxFailures is the failure budget for the run.
	MaxFailures int
	// ExactFailures forces the budget to be spent exactly rather than
	// sampling a failure count up to it.  Schedules that are targeted rather
	// than sampled may ignore it and always spend the budget.
	ExactFailures bool
	// CrashStart and CrashEnd bound the crash window, both inclusive and
	// already resolved to 1 <= CrashStart <= CrashEnd.
	CrashStart, CrashEnd int
}

// Crash schedules the failure of one process at a global time.
type Crash struct {
	Time int
	Proc model.ProcID
}

// Adversary plans the failure pattern of one run.  Implementations must be
// immutable after construction: a single adversary value is shared by every
// worker of a parallel sweep, so all per-run randomness must come from the
// rng argument and all decisions must be pure functions of (rng draws,
// arguments, configuration).  Identical (adversary, seed) pairs always yield
// identical schedules.
type Adversary interface {
	// Name identifies the schedule, e.g. "uniform", "targeted-final".
	Name() string
	// PlanCrashes returns the failure pattern of the run.  It is called once
	// per run, before the workload is generated, with the rng positioned at
	// the start of the seed's stream; an adversary that ignores the rng must
	// simply not draw from it.
	PlanCrashes(rng *rand.Rand, p Params) []Crash
}

// Link identifies one message transmission to a ChannelShaper.  It carries
// the run dimensions so shapers can be pure values with no per-run state.
type Link struct {
	// Now is the send time.
	Now int
	// From and To are the channel endpoints.
	From, To model.ProcID
	// N is the number of processes and Horizon the run length.
	N, Horizon int
}

// Verdict is a ChannelShaper's decision about one message transmission.  The
// zero Verdict leaves the message untouched.
type Verdict struct {
	// Drop requests that this copy be dropped.  Drops requested by a shaper
	// share the network's fairness accounting (condition R5) with the base
	// loss model, so a persistently retransmitted message is still forced
	// through eventually and the channel stays fair-lossy.
	Drop bool
	// ExtraDelay adds to the base delivery delay, in steps.  It must not
	// exceed MaxExtraDelay; the network clamps it there.
	ExtraDelay int
	// Duplicates delivers this many extra copies of the message, each with
	// its own base delay draw.
	Duplicates int
}

// ChannelShaper is implemented by adversaries that additionally decide the
// fate of every message on a per-link basis.  Shape runs on the simulator's
// hot path: implementations must not allocate and must draw any randomness
// from the rng argument.
type ChannelShaper interface {
	// MaxExtraDelay bounds Verdict.ExtraDelay over all possible verdicts; the
	// network sizes its delivery ring from it once per run.
	MaxExtraDelay() int
	// Shape decides the fate of one message transmission.
	Shape(rng *rand.Rand, l Link) Verdict
}

// UniformCrashes is the baseline fault schedule: a uniformly random subset of
// at most MaxFailures processes crashes at uniformly random times in the
// crash window.  It reproduces the sampler that used to be inlined in the
// workload generator draw for draw, so recorded runs of pre-existing
// scenarios are byte-identical to what that sampler produced.
type UniformCrashes struct{}

// Name implements Adversary.
func (UniformCrashes) Name() string { return "uniform" }

// PlanCrashes implements Adversary.
func (UniformCrashes) PlanCrashes(rng *rand.Rand, p Params) []Crash {
	failures := p.MaxFailures
	if failures > p.N {
		failures = p.N
	}
	count := failures
	if !p.ExactFailures && failures > 0 {
		count = rng.Intn(failures + 1)
	}
	// The permutation is drawn even when count is zero so the rng stream
	// stays aligned with the historical inline sampler.
	perm := rng.Perm(p.N)
	crashes := make([]Crash, 0, count)
	for i := 0; i < count; i++ {
		t := p.CrashStart
		if p.CrashEnd > p.CrashStart {
			t += rng.Intn(p.CrashEnd - p.CrashStart + 1)
		}
		crashes = append(crashes, Crash{Time: t, Proc: model.ProcID(perm[i])})
	}
	return crashes
}

// victimCount resolves the number of processes an exact-budget schedule
// crashes.
func victimCount(p Params) int {
	count := p.MaxFailures
	if count > p.N {
		count = p.N
	}
	if count < 0 {
		count = 0
	}
	return count
}

// clampTime forces t into [1, horizon].
func clampTime(t, horizon int) int {
	if t < 1 {
		return 1
	}
	if t > horizon {
		return horizon
	}
	return t
}
