package adversary

import (
	"math/rand"

	"repro/internal/model"
)

// TargetedCrashes crashes exactly the processes coordination leans on: the
// lowest-numbered ones, which are the first rotating coordinators and the
// earliest action initiators.  The full failure budget is always spent
// (targeting is the point, not sampling), and every victim crashes at the
// same instant.
type TargetedCrashes struct {
	// AtFraction positions the crash time at round(AtFraction*Horizon),
	// clamped to [1, Horizon].  Zero means the start of the crash window.
	// With AtFraction = 1 the crashes land on the final step of the run,
	// after the last detector report whenever the report period does not
	// divide the horizon, which makes the finite-trace reading of strong
	// completeness unsatisfiable.
	AtFraction float64
}

// Name implements Adversary.
func (a TargetedCrashes) Name() string {
	if a.AtFraction >= 1 {
		return "targeted-final"
	}
	return "targeted"
}

// PlanCrashes implements Adversary.  It draws nothing from the rng: the
// schedule is a pure function of the run shape.
func (a TargetedCrashes) PlanCrashes(_ *rand.Rand, p Params) []Crash {
	t := p.CrashStart
	if a.AtFraction > 0 {
		t = int(a.AtFraction*float64(p.Horizon) + 0.5)
	}
	t = clampTime(t, p.Horizon)
	count := victimCount(p)
	crashes := make([]Crash, 0, count)
	for i := 0; i < count; i++ {
		crashes = append(crashes, Crash{Time: t, Proc: model.ProcID(i)})
	}
	return crashes
}

// CascadeCrashes is a correlated failure avalanche: one randomly timed
// trigger crash, with the remaining victims following at fixed short
// intervals.  The paper's environments bound only the number of failures,
// not their correlation, so sufficiency claims must survive temporal
// clustering.
type CascadeCrashes struct {
	// Interval is the gap in steps between consecutive crashes (0 means 2).
	Interval int
}

// Name implements Adversary.
func (CascadeCrashes) Name() string { return "cascade" }

func (a CascadeCrashes) interval() int {
	if a.Interval <= 0 {
		return 2
	}
	return a.Interval
}

// PlanCrashes implements Adversary.
func (a CascadeCrashes) PlanCrashes(rng *rand.Rand, p Params) []Crash {
	count := victimCount(p)
	if count == 0 {
		return nil
	}
	perm := rng.Perm(p.N)
	t := p.CrashStart
	if p.CrashEnd > p.CrashStart {
		t += rng.Intn(p.CrashEnd - p.CrashStart + 1)
	}
	crashes := make([]Crash, 0, count)
	for i := 0; i < count; i++ {
		crashes = append(crashes, Crash{Time: clampTime(t, p.Horizon), Proc: model.ProcID(perm[i])})
		t += a.interval()
	}
	return crashes
}

// LateBurstCrashes strikes every failure in the final fraction of the
// horizon, long after detectors and protocols have settled, stressing the
// bounded-horizon interpretation of the completeness properties.
type LateBurstCrashes struct {
	// Window is the final fraction of the horizon in which every crash lands
	// (0 means 0.1).
	Window float64
}

// Name implements Adversary.
func (LateBurstCrashes) Name() string { return "late-burst" }

func (a LateBurstCrashes) window() float64 {
	if a.Window <= 0 {
		return 0.1
	}
	return a.Window
}

// PlanCrashes implements Adversary.
func (a LateBurstCrashes) PlanCrashes(rng *rand.Rand, p Params) []Crash {
	count := victimCount(p)
	if count == 0 {
		return nil
	}
	perm := rng.Perm(p.N)
	start := clampTime(p.Horizon-int(a.window()*float64(p.Horizon)), p.Horizon)
	crashes := make([]Crash, 0, count)
	for i := 0; i < count; i++ {
		t := start
		if p.Horizon > start {
			t += rng.Intn(p.Horizon - start + 1)
		}
		crashes = append(crashes, Crash{Time: t, Proc: model.ProcID(perm[i])})
	}
	return crashes
}
