package table1_test

import (
	"strings"
	"testing"

	"repro/internal/table1"
)

// TestTable1Shape is experiment E1: every cell's sufficient detector class
// succeeds on every seed, and wherever the paper marks the class optimal the
// next-weaker class fails on at least one seed, reproducing the shape of
// Table 1.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep is too slow for -short")
	}
	params := table1.Params{N: 6, Seeds: 10, BaseSeed: 2000, MaxSteps: 450}
	results, err := table1.Evaluate(params)
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	if len(results) != 12 {
		t.Fatalf("expected 12 cells (2 channels x 3 regimes x 2 problems), got %d", len(results))
	}
	for _, res := range results {
		c := res.Cell
		name := c.Channel + "/" + c.Regime + "/" + c.Problem
		if !res.MinimalOK() {
			t.Errorf("%s: the paper-sufficient combination (%s) failed on %d/%d seeds",
				name, c.Minimal.Label, len(res.MinimalResult.Outcomes)-res.MinimalResult.Successes(),
				len(res.MinimalResult.Outcomes))
		}
		if res.WeakerResult != nil && !res.WeakerFails() {
			t.Errorf("%s: the weaker combination (%s) unexpectedly succeeded on all seeds",
				name, c.Weaker.Label)
		}
	}
	rendered := table1.Render(results)
	for _, want := range []string{"UDC", "consensus", "reliable", "fair-lossy", "t-useful", "perfect"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered table missing %q:\n%s", want, rendered)
		}
	}
}

// TestCellsStructure checks the cell enumeration against the paper's table
// without running any simulations.
func TestCellsStructure(t *testing.T) {
	cells := table1.Cells(table1.DefaultParams())
	if len(cells) != 12 {
		t.Fatalf("expected 12 cells, got %d", len(cells))
	}
	type key struct{ channel, regime, problem string }
	byKey := make(map[key]table1.Cell, len(cells))
	for _, c := range cells {
		byKey[key{c.Channel, c.Regime, c.Problem}] = c
	}
	expectDetector := map[key]string{
		{"reliable", "t<n/2", "UDC"}:            "no FD",
		{"reliable", "n/2<=t<n-1", "UDC"}:       "no FD",
		{"reliable", "t>=n-1", "UDC"}:           "no FD",
		{"fair-lossy", "t<n/2", "UDC"}:          "no FD",
		{"fair-lossy", "n/2<=t<n-1", "UDC"}:     "t-useful",
		{"fair-lossy", "t>=n-1", "UDC"}:         "perfect",
		{"reliable", "t<n/2", "consensus"}:      "Diamond-W",
		{"reliable", "n/2<=t<n-1", "consensus"}: "Strong",
		{"reliable", "t>=n-1", "consensus"}:     "Perfect",
	}
	for k, want := range expectDetector {
		c, ok := byKey[k]
		if !ok {
			t.Errorf("missing cell %+v", k)
			continue
		}
		if c.PaperDetector != want {
			t.Errorf("cell %+v: paper detector %q, want %q", k, c.PaperDetector, want)
		}
	}
	// Consensus entries do not depend on the channel regime in the paper's
	// table; check our enumeration preserves that.
	for _, reg := range []string{"t<n/2", "n/2<=t<n-1", "t>=n-1"} {
		rel := byKey[key{"reliable", reg, "consensus"}]
		lossy := byKey[key{"fair-lossy", reg, "consensus"}]
		if rel.PaperDetector != lossy.PaperDetector {
			t.Errorf("consensus row differs across channels for %s: %q vs %q", reg, rel.PaperDetector, lossy.PaperDetector)
		}
	}
	// Every cell has a minimal scenario with a protocol; optimal cells have a
	// weaker scenario.
	for _, c := range cells {
		if c.Minimal.Spec.Protocol == nil {
			t.Errorf("cell %s/%s/%s has no minimal protocol", c.Channel, c.Regime, c.Problem)
		}
		if c.Optimal && c.Problem == "UDC" && c.Weaker == nil {
			t.Errorf("optimal UDC cell %s/%s has no weaker scenario", c.Channel, c.Regime)
		}
	}
}
