// Package table1 regenerates Table 1 of the paper: the class of failure
// detector needed to attain UDC versus consensus, as a function of the
// communication guarantee (reliable vs. unreliable-but-fair channels) and the
// bound t on the number of failures (t < n/2, n/2 <= t < n-1, t >= n-1).
//
// The paper's table is a theoretical characterisation; this package reproduces
// its *shape* empirically.  For every cell it runs two scenarios over a seed
// sweep:
//
//   - the minimal scenario: the protocol/detector combination the paper says
//     suffices for that cell, which must succeed on every seed, and
//   - where the paper marks the cell as optimal (the dagger in Table 1), a
//     weaker scenario using the next-weaker detector class, which must fail on
//     at least one seed, demonstrating that the weaker class does not suffice.
//
// The consensus rows use the Chandra-Toueg baselines from internal/consensus;
// the Diamond-S detector stands in for Diamond-W (Chandra & Toueg show the two
// are equivalent via gossip, just as weak and strong detectors are).
package table1

import (
	"fmt"
	"strings"

	"repro/internal/fd"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scenario is one protocol/detector combination evaluated for a cell.
type Scenario struct {
	// Label names the detector/protocol combination, e.g. "no FD / quorum".
	Label string
	// Spec is the workload to run.
	Spec workload.Spec
	// Eval checks the cell's problem (UDC or consensus) on each run.
	Eval workload.Evaluator
}

// Cell is one entry of Table 1.
type Cell struct {
	// Channel is "reliable" or "fair-lossy".
	Channel string
	// Regime is the failure-bound regime, e.g. "t<n/2".
	Regime string
	// Problem is "UDC" or "consensus".
	Problem string
	// PaperDetector is the detector class Table 1 lists for this cell.
	PaperDetector string
	// Optimal records whether the paper marks the cell with a dagger
	// (optimality of the listed detector class).
	Optimal bool
	// Minimal is the scenario using the listed (sufficient) detector class.
	Minimal Scenario
	// Weaker, if non-nil, is the next-weaker scenario expected to fail.
	Weaker *Scenario
}

// CellResult is the evaluation of one cell.
type CellResult struct {
	Cell          Cell
	MinimalResult workload.SweepResult
	WeakerResult  *workload.SweepResult
}

// MinimalOK reports whether the sufficient detector class succeeded on every
// seed.
func (c CellResult) MinimalOK() bool {
	return c.MinimalResult.Successes() == len(c.MinimalResult.Outcomes)
}

// WeakerFails reports whether the weaker scenario failed on at least one seed
// (vacuously true when no weaker scenario is defined).
func (c CellResult) WeakerFails() bool {
	if c.WeakerResult == nil {
		return true
	}
	return c.WeakerResult.Successes() < len(c.WeakerResult.Outcomes)
}

// Params controls the sweep.
type Params struct {
	// N is the number of processes (at least 4; 6 reproduces the paper-shaped
	// boundaries cleanly).
	N int
	// Seeds is the number of seeds per scenario.
	Seeds int
	// BaseSeed anchors the deterministic seed sequence.
	BaseSeed int64
	// MaxSteps is the per-run horizon.
	MaxSteps int
	// Workers is the parallel sweep pool size (0 = GOMAXPROCS).  The results
	// are identical for every worker count.
	Workers int
}

// DefaultParams returns the parameters used by cmd/table1 and the benchmark
// harness.
func DefaultParams() Params {
	return Params{N: 6, Seeds: 20, BaseSeed: 1000, MaxSteps: 450}
}

// regime describes one failure-bound column.
type regime struct {
	name string
	t    func(n int) int
}

func regimes() []regime {
	return []regime{
		{name: "t<n/2", t: func(n int) int { return (n - 1) / 2 }},
		{name: "n/2<=t<n-1", t: func(n int) int { return n - 2 }},
		{name: "t>=n-1", t: func(n int) int { return n - 1 }},
	}
}

// network returns the channel configuration for a channel regime.
func network(channel string) sim.NetworkConfig {
	if channel == "reliable" {
		return sim.ReliableNetwork()
	}
	return sim.FairLossyNetwork(0.3)
}

// harshNetwork is used for the "weaker detector" scenarios: higher loss and a
// very lax fairness bound make it easy for an under-equipped protocol to lose
// the race between propagation and crashes, while a correctly-equipped
// protocol still succeeds (it keeps retransmitting until acknowledged).
func harshNetwork() sim.NetworkConfig {
	return sim.NetworkConfig{DropProbability: 0.85, MaxDelay: 6, FairnessBound: 400}
}

// weakenUDCSpec adjusts a weaker-scenario workload so that crashes race the
// propagation of freshly initiated actions: all initiations happen early and
// the crash window overlaps them.
func weakenUDCSpec(spec workload.Spec) workload.Spec {
	spec.LastInitTime = 25
	spec.CrashStart = 2
	spec.CrashEnd = 35
	return spec
}

// udcSpec builds the common UDC workload shape for a cell.
func udcSpec(p Params, name string, net sim.NetworkConfig, oracle fd.Oracle, factory sim.ProtocolFactory, t int, exact bool, crashEnd int) workload.Spec {
	return workload.Spec{
		Name:          name,
		N:             p.N,
		MaxSteps:      p.MaxSteps,
		TickEvery:     2,
		SuspectEvery:  3,
		Network:       net,
		Oracle:        oracle,
		Protocol:      factory,
		Actions:       p.N,
		MaxFailures:   t,
		ExactFailures: exact,
		CrashEnd:      crashEnd,
	}
}

// consensusSpec builds the common consensus workload shape for a cell.
func consensusSpec(p Params, name string, net sim.NetworkConfig, oracle fd.Oracle, factory sim.ProtocolFactory, t int) workload.Spec {
	return workload.Spec{
		Name:          name,
		N:             p.N,
		MaxSteps:      p.MaxSteps,
		TickEvery:     2,
		SuspectEvery:  3,
		Network:       net,
		Oracle:        oracle,
		Protocol:      factory,
		Actions:       0,
		MaxFailures:   t,
		ExactFailures: true,
		CrashEnd:      p.MaxSteps / 4,
	}
}

// Cells enumerates every Table 1 cell for the given parameters.
func Cells(p Params) []Cell {
	var cells []Cell
	consEval := registry.MustEvaluator("consensus", registry.Options{N: p.N})

	for _, channel := range []string{"reliable", "fair-lossy"} {
		net := network(channel)
		for _, reg := range regimes() {
			t := reg.t(p.N)
			cells = append(cells,
				udcCell(p, channel, net, reg.name, t),
				consensusCell(p, channel, net, reg.name, t, consEval),
			)
		}
	}
	return cells
}

// udcCell builds the UDC row entry for one (channel, regime) pair.
func udcCell(p Params, channel string, net sim.NetworkConfig, regimeName string, t int) Cell {
	cell := Cell{Channel: channel, Regime: regimeName, Problem: "UDC"}
	crashEnd := p.MaxSteps / 4

	switch {
	case channel == "reliable":
		// Reliable channels: no failure detector needed regardless of t
		// (Proposition 2.4).
		cell.PaperDetector = "no FD"
		cell.Minimal = Scenario{
			Label: "no FD / relay-then-perform",
			Spec:  udcSpec(p, cellName(cell, "minimal"), net, nil, registry.MustProtocol("reliable", registry.Options{}), t, true, crashEnd),
			Eval:  workload.UDCEvaluator,
		}
	case regimeName == "t<n/2":
		// Corollary 4.2: no failure detector needed.
		cell.PaperDetector = "no FD"
		cell.Minimal = Scenario{
			Label: "no FD / quorum",
			Spec:  udcSpec(p, cellName(cell, "minimal"), net, nil, registry.MustProtocol("quorum", registry.Options{T: t}), t, true, crashEnd),
			Eval:  workload.UDCEvaluator,
		}
	case regimeName == "n/2<=t<n-1":
		// Proposition 4.1 / Theorem 4.3: t-useful generalized detectors are
		// necessary and sufficient.
		cell.PaperDetector = "t-useful"
		cell.Optimal = true
		cell.Minimal = Scenario{
			Label: "t-useful generalized FD",
			Spec: udcSpec(p, cellName(cell, "minimal"), net,
				registry.MustOracle("faulty-set", registry.Options{}), registry.MustProtocol("tuseful", registry.Options{T: t}), t, true, crashEnd),
			Eval: workload.UDCEvaluator,
		}
		weaker := Scenario{
			Label: "no FD / quorum (insufficient)",
			Spec:  weakenUDCSpec(udcSpec(p, cellName(cell, "weaker"), harshNetwork(), nil, registry.MustProtocol("quorum", registry.Options{T: t}), t, true, 35)),
			Eval:  workload.UDCEvaluator,
		}
		cell.Weaker = &weaker
	default:
		// Proposition 3.1 / Theorem 3.6: strong detectors suffice and perfect
		// detectors can be simulated, i.e. effectively perfect detection is
		// needed.
		cell.PaperDetector = "perfect"
		cell.Optimal = true
		cell.Minimal = Scenario{
			Label: "strong FD (≅ perfect, Prop 3.4)",
			Spec: udcSpec(p, cellName(cell, "minimal"), net,
				registry.MustOracle("strong", registry.Options{Seed: 77}), registry.MustProtocol("strong", registry.Options{}), t, true, crashEnd),
			Eval: workload.UDCEvaluator,
		}
		weaker := Scenario{
			Label: "no FD / immediate perform (insufficient)",
			Spec:  weakenUDCSpec(udcSpec(p, cellName(cell, "weaker"), harshNetwork(), nil, registry.MustProtocol("nudc", registry.Options{}), t, true, 35)),
			Eval:  workload.UDCEvaluator,
		}
		cell.Weaker = &weaker
	}
	return cell
}

// consensusCell builds the consensus row entry for one (channel, regime) pair.
func consensusCell(p Params, channel string, net sim.NetworkConfig, regimeName string, t int, consEval workload.Evaluator) Cell {
	cell := Cell{Channel: channel, Regime: regimeName, Problem: "consensus"}

	switch regimeName {
	case "t<n/2":
		cell.PaperDetector = "Diamond-W"
		cell.Optimal = true
		cell.Minimal = Scenario{
			Label: "Diamond-S / CT majority",
			Spec: consensusSpec(p, cellName(cell, "minimal"), net,
				registry.MustOracle("eventually-strong", registry.Options{StabilizeAt: p.MaxSteps / 4, Seed: 13}),
				registry.MustProtocol("consensus-majority", registry.Options{N: p.N}), t),
			Eval: consEval,
		}
	case "n/2<=t<n-1":
		cell.PaperDetector = "Strong"
		cell.Minimal = Scenario{
			Label: "strong FD / rotating coordinator",
			Spec: consensusSpec(p, cellName(cell, "minimal"), net,
				registry.MustOracle("strong", registry.Options{Seed: 31}),
				registry.MustProtocol("consensus-rotating", registry.Options{N: p.N}), t),
			Eval: consEval,
		}
		weaker := Scenario{
			Label: "Diamond-S / CT majority (loses termination)",
			Spec: weakenConsensusSpec(consensusSpec(p, cellName(cell, "weaker"), net,
				registry.MustOracle("eventually-strong", registry.Options{StabilizeAt: p.MaxSteps / 4, Seed: 13}),
				registry.MustProtocol("consensus-majority", registry.Options{N: p.N}), t)),
			Eval: consEval,
		}
		cell.Weaker = &weaker
	default:
		cell.PaperDetector = "Perfect"
		cell.Optimal = true
		cell.Minimal = Scenario{
			Label: "perfect FD / rotating coordinator",
			Spec: consensusSpec(p, cellName(cell, "minimal"), net,
				registry.MustOracle("perfect", registry.Options{}), registry.MustProtocol("consensus-rotating", registry.Options{N: p.N}), t),
			Eval: consEval,
		}
		weaker := Scenario{
			Label: "Diamond-S / CT majority (loses termination)",
			Spec: weakenConsensusSpec(consensusSpec(p, cellName(cell, "weaker"), net,
				registry.MustOracle("eventually-strong", registry.Options{StabilizeAt: p.MaxSteps / 4, Seed: 13}),
				registry.MustProtocol("consensus-majority", registry.Options{N: p.N}), t)),
			Eval: consEval,
		}
		cell.Weaker = &weaker
	}
	return cell
}

// weakenConsensusSpec makes more than half of the processes crash right at the
// start of the run, before the majority algorithm can assemble its first
// quorum.  A majority-based algorithm then blocks forever (losing
// termination), which is exactly why Table 1 requires a strong or perfect
// detector — driving a coordinator-wait-free algorithm — once t >= n/2.
func weakenConsensusSpec(spec workload.Spec) workload.Spec {
	spec.CrashStart = 1
	spec.CrashEnd = 3
	return spec
}

// cellName builds a stable scenario name for reports.
func cellName(c Cell, kind string) string {
	return fmt.Sprintf("%s/%s/%s/%s", c.Channel, c.Regime, c.Problem, kind)
}

// EvaluateCell sweeps one cell's scenarios.
func EvaluateCell(c Cell, p Params) (CellResult, error) {
	results, err := evaluateCells([]Cell{c}, p)
	if err != nil {
		return CellResult{}, err
	}
	return results[0], nil
}

// Evaluate sweeps every cell.  All (scenario, seed) pairs of all cells are
// distributed over one parallel worker pool, so the table evaluates at
// full-machine throughput while the per-cell aggregates stay identical to a
// serial sweep.
func Evaluate(p Params) ([]CellResult, error) {
	return evaluateCells(Cells(p), p)
}

// evaluateCells flattens the cells' scenarios into sweep tasks, runs them on
// the shared pool, and reassembles per-cell results.
func evaluateCells(cells []Cell, p Params) ([]CellResult, error) {
	seeds := workload.Seeds(p.BaseSeed, p.Seeds)
	var tasks []workload.Task
	weakerAt := make([]int, len(cells)) // task index of each cell's weaker sweep, -1 if none
	for i, c := range cells {
		tasks = append(tasks, workload.Task{Spec: c.Minimal.Spec, Seeds: seeds, Eval: c.Minimal.Eval})
		weakerAt[i] = -1
		if c.Weaker != nil {
			weakerAt[i] = len(tasks)
			tasks = append(tasks, workload.Task{Spec: c.Weaker.Spec, Seeds: seeds, Eval: c.Weaker.Eval})
		}
	}
	runner := workload.Runner{Workers: p.Workers}
	results, err := runner.SweepAll(tasks)
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	out := make([]CellResult, 0, len(cells))
	task := 0
	for i, c := range cells {
		res := CellResult{Cell: c, MinimalResult: results[task]}
		task++
		if weakerAt[i] >= 0 {
			weaker := results[task]
			task++
			res.WeakerResult = &weaker
		}
		out = append(out, res)
	}
	return out, nil
}

// Render formats the results as the paper's Table 1, annotated with the
// measured success rates.
func Render(results []CellResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %-10s %-12s %-14s %-9s %-11s %s\n",
		"channels", "problem", "regime", "paper needs", "minimal", "weaker", "labels")
	for _, res := range results {
		c := res.Cell
		detector := c.PaperDetector
		if c.Optimal {
			detector += " (+)"
		}
		minimal := fmt.Sprintf("%d/%d ok", res.MinimalResult.Successes(), len(res.MinimalResult.Outcomes))
		weaker := "-"
		labels := c.Minimal.Label
		if res.WeakerResult != nil {
			weaker = fmt.Sprintf("%d/%d ok", res.WeakerResult.Successes(), len(res.WeakerResult.Outcomes))
			labels += " | " + c.Weaker.Label
		}
		fmt.Fprintf(&b, "%-11s %-10s %-12s %-14s %-9s %-11s %s\n",
			c.Channel, c.Problem, c.Regime, detector, minimal, weaker, labels)
	}
	b.WriteString("\n(+) marks cells the paper proves optimal; 'minimal' must be all-ok, 'weaker' must be < all-ok.\n")
	return b.String()
}
