package service_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/service"
	"repro/internal/sim"
)

func requests() []service.Request {
	return []service.Request{
		{Replica: 0, Seq: 0, Units: 3, Client: "alice"},
		{Replica: 1, Seq: 1, Units: 2, Client: "bob"},
		{Replica: 2, Seq: 2, Units: 4, Client: "carol"},
		{Replica: 0, Seq: 3, Units: 1, Client: "dave"},
	}
}

func initiationsFor(reqs []service.Request, times []int) []sim.Initiation {
	out := make([]sim.Initiation, len(reqs))
	for i, req := range reqs {
		out[i] = sim.Initiation{Time: times[i], Proc: req.Replica, Action: service.ActionFor(req)}
	}
	return out
}

// TestReplicatedAllocatorConverges runs the introduction's motivating service
// on top of the strong-detector UDC protocol: despite crashes (including the
// crash of a replica that accepted a request) every correct replica ends with
// the same allocation state and no accepted allocation is repudiated.
func TestReplicatedAllocatorConverges(t *testing.T) {
	reqs := requests()
	cfg := sim.Config{
		N:            5,
		Seed:         7,
		MaxSteps:     400,
		TickEvery:    2,
		SuspectEvery: 3,
		Network:      sim.FairLossyNetwork(0.3),
		Crashes:      []sim.CrashEvent{{Time: 50, Proc: 2}, {Time: 90, Proc: 4}},
		Initiations:  initiationsFor(reqs, []int{5, 15, 30, 70}),
		Protocol:     core.NewStrongFDUDC,
		Oracle:       fd.StrongOracle{FalseSuspicionRate: 0.1, Seed: 2},
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if vs := service.CheckConvergence(res.Run, reqs, 20); len(vs) != 0 {
		t.Fatalf("service diverged: %v", vs[0])
	}
	// The replica that accepted carol's request crashed at 50; the request was
	// initiated at 30, so if it committed anywhere it must be in every correct
	// replica's state.
	correct := res.Run.Correct().Members()
	st := service.BuildState(res.Run, correct[0], reqs, 20)
	if st.Allocated == 0 {
		t.Fatalf("no allocations committed at all")
	}
	if st.Remaining != 20-st.Allocated {
		t.Fatalf("remaining = %d, want %d", st.Remaining, 20-st.Allocated)
	}
}

func TestBuildStateCanonicalOrder(t *testing.T) {
	reqs := requests()
	r := model.NewRun(2)
	must := func(p model.ProcID, at int, e model.Event) {
		t.Helper()
		if err := r.Append(p, at, e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	// Replica 0 applies in one order, replica 1 in another; their states must
	// nevertheless agree.
	must(0, 1, model.Event{Kind: model.EventInit, Action: service.ActionFor(reqs[0])})
	must(1, 1, model.Event{Kind: model.EventInit, Action: service.ActionFor(reqs[1])})
	must(0, 2, model.Event{Kind: model.EventDo, Action: service.ActionFor(reqs[0])})
	must(0, 3, model.Event{Kind: model.EventDo, Action: service.ActionFor(reqs[1])})
	must(1, 2, model.Event{Kind: model.EventDo, Action: service.ActionFor(reqs[1])})
	must(1, 3, model.Event{Kind: model.EventDo, Action: service.ActionFor(reqs[0])})
	r.SetHorizon(5)

	s0 := service.BuildState(r, 0, reqs, 10)
	s1 := service.BuildState(r, 1, reqs, 10)
	if s0.Fingerprint() != s1.Fingerprint() {
		t.Fatalf("states differ despite identical applied sets: %q vs %q", s0.Fingerprint(), s1.Fingerprint())
	}
	if s0.Allocated != 5 || s0.Remaining != 5 {
		t.Fatalf("allocation arithmetic wrong: %+v", s0)
	}
	if len(s0.Applied) != 2 {
		t.Fatalf("applied = %d requests, want 2", len(s0.Applied))
	}
	if vs := service.CheckConvergence(r, reqs, 10); len(vs) != 0 {
		t.Fatalf("unexpected violations: %v", vs)
	}
}

func TestCheckConvergenceFlagsDivergenceAndRepudiation(t *testing.T) {
	reqs := requests()
	r := model.NewRun(3)
	must := func(p model.ProcID, at int, e model.Event) {
		t.Helper()
		if err := r.Append(p, at, e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	must(0, 1, model.Event{Kind: model.EventInit, Action: service.ActionFor(reqs[0])})
	// Replica 2 applies the request and then crashes; the correct replicas 0
	// and 1 never apply it: that is exactly the repudiation UDC forbids.
	must(2, 2, model.Event{Kind: model.EventDo, Action: service.ActionFor(reqs[0])})
	must(2, 3, model.Event{Kind: model.EventCrash})
	r.SetHorizon(6)
	vs := service.CheckConvergence(r, reqs, 10)
	foundRepudiation := false
	for _, v := range vs {
		if v.Rule == "service-repudiation" {
			foundRepudiation = true
		}
	}
	if !foundRepudiation {
		t.Fatalf("repudiation not flagged: %v", vs)
	}

	// Divergence between correct replicas.
	r2 := model.NewRun(2)
	must2 := func(p model.ProcID, at int, e model.Event) {
		t.Helper()
		if err := r2.Append(p, at, e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	must2(0, 1, model.Event{Kind: model.EventInit, Action: service.ActionFor(reqs[0])})
	must2(0, 2, model.Event{Kind: model.EventDo, Action: service.ActionFor(reqs[0])})
	r2.SetHorizon(5)
	vs2 := service.CheckConvergence(r2, reqs, 10)
	foundDivergence := false
	for _, v := range vs2 {
		if v.Rule == "service-convergence" {
			foundDivergence = true
		}
	}
	if !foundDivergence {
		t.Fatalf("divergence not flagged: %v", vs2)
	}

	// Applying a request nobody submitted is flagged too.
	r3 := model.NewRun(1)
	must3 := func(at int, e model.Event) {
		t.Helper()
		if err := r3.Append(0, at, e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	must3(2, model.Event{Kind: model.EventDo, Action: model.Action(0, 99)})
	r3.SetHorizon(5)
	vs3 := service.CheckConvergence(r3, reqs, 10)
	foundUnknown := false
	for _, v := range vs3 {
		if v.Rule == "service-unknown-request" {
			foundUnknown = true
		}
	}
	if !foundUnknown {
		t.Fatalf("unknown request not flagged: %v", vs3)
	}
}

func TestCheckConvergenceAllFaultyIsVacuous(t *testing.T) {
	r := model.NewRun(1)
	if err := r.Append(0, 1, model.Event{Kind: model.EventCrash}); err != nil {
		t.Fatalf("append: %v", err)
	}
	r.SetHorizon(3)
	if vs := service.CheckConvergence(r, requests(), 10); len(vs) != 0 {
		t.Fatalf("no correct replicas means nothing to check, got %v", vs)
	}
}
