// Package service implements the replicated fault-tolerant service that
// motivates UDC in the paper's introduction: a group of replicas executes
// state-changing actions (here, allocations of a scarce resource) on behalf of
// clients, and the service must not repudiate an action merely because the
// replica that accepted it is later deemed faulty.  Uniform Distributed
// Coordination is exactly the guarantee that every accepted allocation becomes
// part of the service's communal history at every correct replica.
package service

import (
	"sort"

	"repro/internal/model"
)

// Request is a client request to allocate Units of the resource, submitted
// through a particular replica.  The (Replica, Seq) pair identifies the
// request and doubles as the UDC action that commits it.
type Request struct {
	Replica model.ProcID
	Seq     int
	Units   int
	Client  string
}

// ActionFor maps a request onto the coordination action that commits it.
func ActionFor(req Request) model.ActionID {
	return model.ActionID{Initiator: req.Replica, Seq: req.Seq}
}

// State is a replica's view of the service after replaying its committed
// allocations.
type State struct {
	// Applied lists the committed requests in the canonical apply order.
	Applied []Request
	// Allocated is the total number of units handed out.
	Allocated int
	// Remaining is Capacity minus Allocated (may go negative if the workload
	// over-commits; UDC does not arbitrate conflicts, it only guarantees
	// uniformity, as Section 2.4 stresses).
	Remaining int
}

// BuildState replays the do events of replica p against the request table and
// returns the resulting state.  Commits are applied in a canonical order
// (sorted by action id) so that replicas that learned of them in different
// orders still converge; this is the "non-conflicting actions" reading of UDC
// from the introduction.
func BuildState(r *model.Run, p model.ProcID, requests []Request, capacity int) State {
	byAction := make(map[model.ActionID]Request, len(requests))
	for _, req := range requests {
		byAction[ActionFor(req)] = req
	}
	var applied []Request
	for _, te := range r.Events[p] {
		if te.Event.Kind != model.EventDo {
			continue
		}
		if req, ok := byAction[te.Event.Action]; ok {
			applied = append(applied, req)
		}
	}
	sort.Slice(applied, func(i, j int) bool {
		if applied[i].Replica != applied[j].Replica {
			return applied[i].Replica < applied[j].Replica
		}
		return applied[i].Seq < applied[j].Seq
	})
	st := State{Applied: applied}
	for _, req := range applied {
		st.Allocated += req.Units
	}
	st.Remaining = capacity - st.Allocated
	return st
}

// Fingerprint returns a canonical string identifying the set of applied
// requests, used to compare replica states.
func (s State) Fingerprint() string {
	out := ""
	for _, req := range s.Applied {
		out += req.Client + "#" + itoa(int(req.Replica)) + "." + itoa(req.Seq) + ":" + itoa(req.Units) + ";"
	}
	return out
}

// CheckConvergence verifies the service-level guarantees on a run:
//
//   - every correct replica ends with the same applied set (a consequence of
//     UDC's DC2), and
//   - every applied request was actually submitted (DC3), and
//   - if any replica (even one that later crashed) applied a request, every
//     correct replica applied it — the non-repudiation property from the
//     introduction.
func CheckConvergence(r *model.Run, requests []Request, capacity int) []model.Violation {
	var out []model.Violation
	correct := r.Correct().Members()
	if len(correct) == 0 {
		return nil
	}

	states := make(map[model.ProcID]State, r.N)
	for p := model.ProcID(0); int(p) < r.N; p++ {
		states[p] = BuildState(r, p, requests, capacity)
	}

	reference := states[correct[0]]
	for _, p := range correct[1:] {
		if states[p].Fingerprint() != reference.Fingerprint() {
			out = append(out, model.Violationf("service-convergence",
				"replica %d state %q differs from replica %d state %q",
				p, states[p].Fingerprint(), correct[0], reference.Fingerprint()))
		}
	}

	known := make(map[model.ActionID]bool, len(requests))
	for _, req := range requests {
		known[ActionFor(req)] = true
	}
	appliedByCorrect := make(map[model.ActionID]bool)
	for _, req := range reference.Applied {
		appliedByCorrect[ActionFor(req)] = true
	}
	for p := model.ProcID(0); int(p) < r.N; p++ {
		for _, te := range r.Events[p] {
			if te.Event.Kind != model.EventDo {
				continue
			}
			a := te.Event.Action
			if !known[a] {
				out = append(out, model.Violationf("service-unknown-request",
					"replica %d applied %v which no client submitted", p, a))
				continue
			}
			if !appliedByCorrect[a] {
				out = append(out, model.Violationf("service-repudiation",
					"replica %d applied %v but the correct replicas' state omits it", p, a))
			}
		}
	}
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
