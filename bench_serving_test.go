package repro_test

// Serving-layer benchmarks (PR 4): the binary run codec against the JSON
// trace path, cold-versus-warm daemon sweep latency, and scheduler
// throughput under concurrent duplicate requests.  BenchmarkCodec,
// BenchmarkServerSweep and BenchmarkSchedulerDuplicates feed BENCH_<n>.json
// via `make bench` alongside the simulation benchmarks.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// codecCorpus simulates a fixed corpus of recorded runs for the codec
// benchmarks: the throughput scenario's shape, 16 seeds.
func codecCorpus(b *testing.B) model.System {
	b.Helper()
	spec := registry.MustScenario("throughput").Spec
	runs := make(model.System, 0, 16)
	for _, seed := range workload.Seeds(1, 16) {
		res, err := workload.Execute(spec, seed)
		if err != nil {
			b.Fatalf("simulate corpus: %v", err)
		}
		runs = append(runs, res.Run)
	}
	return runs
}

// BenchmarkCodec compares the binary run container against the JSON trace
// encoding on the same corpus, reporting bytes per run for both so the size
// ratio lands in the benchmark snapshot next to the speed ratio.
func BenchmarkCodec(b *testing.B) {
	runs := codecCorpus(b)

	var binBytes, jsonBytes int
	encoded := make([][]byte, len(runs))
	var jsonBuf bytes.Buffer
	for i, run := range runs {
		encoded[i] = store.EncodeRun(run)
		binBytes += len(encoded[i])
		jsonBuf.Reset()
		if err := trace.EncodeJSON(&jsonBuf, run); err != nil {
			b.Fatal(err)
		}
		jsonBytes += jsonBuf.Len()
	}
	jsonDocs := make([][]byte, len(runs))
	for i, run := range runs {
		var buf bytes.Buffer
		if err := trace.EncodeJSON(&buf, run); err != nil {
			b.Fatal(err)
		}
		jsonDocs[i] = buf.Bytes()
	}

	b.Run(fmt.Sprintf("encode-bin/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportMetric(float64(binBytes)/float64(len(runs)), "bytes/run")
		for i := 0; i < b.N; i++ {
			for _, run := range runs {
				if out := store.EncodeRun(run); len(out) == 0 {
					b.Fatal("empty encoding")
				}
			}
		}
	})
	b.Run(fmt.Sprintf("encode-json/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportMetric(float64(jsonBytes)/float64(len(runs)), "bytes/run")
		for i := 0; i < b.N; i++ {
			for _, run := range runs {
				jsonBuf.Reset()
				if err := trace.EncodeJSON(&jsonBuf, run); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("decode-bin/runs=%d", len(runs)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, data := range encoded {
				if _, err := store.DecodeRun(data); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("decode-json/runs=%d", len(runs)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range jsonDocs {
				if _, err := trace.DecodeJSON(bytes.NewReader(doc)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// newBenchServer assembles a memory-backed daemon for the serving
// benchmarks.
func newBenchServer(b *testing.B) (*server.Server, *httptest.Server) {
	b.Helper()
	st, err := store.Open("", store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func benchGet(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", resp.StatusCode)
	}
}

// BenchmarkServerSweep measures /v1/sweep latency cold (every request a
// fresh seed base, so the fleet simulates) and warm (one hot entry served
// from the store).
func BenchmarkServerSweep(b *testing.B) {
	const scenario, seeds = "prop2.3-nudc", 8
	b.Run(fmt.Sprintf("cold/%s/seeds=%d", scenario, seeds), func(b *testing.B) {
		_, ts := newBenchServer(b)
		for i := 0; i < b.N; i++ {
			benchGet(b, fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d&seedBase=%d", ts.URL, scenario, seeds, 1+i*100000))
		}
	})
	b.Run(fmt.Sprintf("warm/%s/seeds=%d", scenario, seeds), func(b *testing.B) {
		_, ts := newBenchServer(b)
		url := fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d", ts.URL, scenario, seeds)
		benchGet(b, url) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, url)
		}
	})
}

// BenchmarkSchedulerDuplicates measures the scheduler under 64 concurrent
// duplicate requests per operation: cold (each round a fresh key, so
// singleflight coalesces 64 requests onto one fleet computation) and warm
// (all 64 served from the store).
func BenchmarkSchedulerDuplicates(b *testing.B) {
	const dups = 64
	fire := func(b *testing.B, url string) {
		var wg sync.WaitGroup
		errs := make([]error, dups)
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				resp, err := http.Get(url)
				if err != nil {
					errs[d] = err
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode != http.StatusOK {
					errs[d] = fmt.Errorf("HTTP %d", resp.StatusCode)
				}
			}(d)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run(fmt.Sprintf("cold/dups=%d", dups), func(b *testing.B) {
		srv, ts := newBenchServer(b)
		for i := 0; i < b.N; i++ {
			fire(b, fmt.Sprintf("%s/v1/sweep?scenario=prop2.3-nudc&seeds=8&seedBase=%d", ts.URL, 1+i*100000))
		}
		b.StopTimer()
		ss := srv.SchedulerStats()
		if ss.Computed != uint64(b.N) {
			b.Fatalf("computed %d results for %d cold rounds (singleflight must compute once per round)", ss.Computed, b.N)
		}
		b.ReportMetric(float64(ss.Coalesced+ss.CacheHits)/float64(b.N), "coalesced/op")
	})
	b.Run(fmt.Sprintf("warm/dups=%d", dups), func(b *testing.B) {
		_, ts := newBenchServer(b)
		url := ts.URL + "/v1/sweep?scenario=prop2.3-nudc&seeds=8"
		benchGet(b, url) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fire(b, url)
		}
	})
}
