package repro_test

// Serving-layer benchmarks (PR 4): the binary run codec against the JSON
// trace path, cold-versus-warm daemon sweep latency, and scheduler
// throughput under concurrent duplicate requests.  BenchmarkCodec,
// BenchmarkServerSweep and BenchmarkSchedulerDuplicates feed BENCH_<n>.json
// via `make bench` alongside the simulation benchmarks.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// codecCorpus simulates a fixed corpus of recorded runs for the codec
// benchmarks: the throughput scenario's shape, 16 seeds.
func codecCorpus(b *testing.B) model.System {
	b.Helper()
	spec := registry.MustScenario("throughput").Spec
	runs := make(model.System, 0, 16)
	for _, seed := range workload.Seeds(1, 16) {
		res, err := workload.Execute(spec, seed)
		if err != nil {
			b.Fatalf("simulate corpus: %v", err)
		}
		runs = append(runs, res.Run)
	}
	return runs
}

// BenchmarkCodec compares the binary run container against the JSON trace
// encoding on the same corpus, reporting bytes per run for both so the size
// ratio lands in the benchmark snapshot next to the speed ratio.
func BenchmarkCodec(b *testing.B) {
	runs := codecCorpus(b)

	var binBytes, jsonBytes int
	encoded := make([][]byte, len(runs))
	var jsonBuf bytes.Buffer
	for i, run := range runs {
		encoded[i] = store.EncodeRun(run)
		binBytes += len(encoded[i])
		jsonBuf.Reset()
		if err := trace.EncodeJSON(&jsonBuf, run); err != nil {
			b.Fatal(err)
		}
		jsonBytes += jsonBuf.Len()
	}
	jsonDocs := make([][]byte, len(runs))
	for i, run := range runs {
		var buf bytes.Buffer
		if err := trace.EncodeJSON(&buf, run); err != nil {
			b.Fatal(err)
		}
		jsonDocs[i] = buf.Bytes()
	}

	b.Run(fmt.Sprintf("encode-bin/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportMetric(float64(binBytes)/float64(len(runs)), "bytes/run")
		for i := 0; i < b.N; i++ {
			for _, run := range runs {
				if out := store.EncodeRun(run); len(out) == 0 {
					b.Fatal("empty encoding")
				}
			}
		}
	})
	b.Run(fmt.Sprintf("encode-json/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportMetric(float64(jsonBytes)/float64(len(runs)), "bytes/run")
		for i := 0; i < b.N; i++ {
			for _, run := range runs {
				jsonBuf.Reset()
				if err := trace.EncodeJSON(&jsonBuf, run); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// decode-bin measures the serving path: a pooled decoder draining the
	// batch through its reusable buffers, as GetMulti and the scheduler's
	// partial-hit assembly do.  decode-bin-owned measures store.DecodeRun,
	// which adds a compact owning copy per run — the historical measurement.
	b.Run(fmt.Sprintf("decode-bin/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportAllocs()
		dec := store.NewRunDecoder()
		for i := 0; i < b.N; i++ {
			for _, data := range encoded {
				if _, err := dec.DecodeRun(data); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("decode-bin-owned/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, data := range encoded {
				if _, err := store.DecodeRun(data); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	// decode-bin-arena is decode-bin-owned with the owning copies carved from
	// a reused CloneArena: the allocation cliff of the owned variant (three
	// allocations per run) amortises to zero in steady state.
	b.Run(fmt.Sprintf("decode-bin-arena/runs=%d", len(runs)), func(b *testing.B) {
		b.ReportAllocs()
		arena := model.NewCloneArena()
		for i := 0; i < b.N; i++ {
			arena.Reset()
			for _, data := range encoded {
				if _, err := store.DecodeRunInto(arena, data); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run(fmt.Sprintf("decode-json/runs=%d", len(runs)), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, doc := range jsonDocs {
				if _, err := trace.DecodeJSON(bytes.NewReader(doc)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// newBenchServer assembles a memory-backed daemon for the serving
// benchmarks.
func newBenchServer(b *testing.B) (*server.Server, *httptest.Server) {
	b.Helper()
	st, err := store.Open("", store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func benchGet(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Get(url)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", resp.StatusCode)
	}
}

// BenchmarkServerSweep measures /v1/sweep latency cold (every request a
// fresh seed base, so the fleet simulates), warm (one hot entry served from
// the store), and overlap (windows sliding by half their width across a
// primed corpus, so every response assembles from per-seed records with zero
// recompute — the acceptance target is ≥5× over cold at the same window
// size).
func BenchmarkServerSweep(b *testing.B) {
	const scenario, seeds = "prop2.3-nudc", 8
	b.Run(fmt.Sprintf("cold/%s/seeds=%d", scenario, seeds), func(b *testing.B) {
		_, ts := newBenchServer(b)
		for i := 0; i < b.N; i++ {
			benchGet(b, fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d&seedBase=%d", ts.URL, scenario, seeds, 1+i*100000))
		}
	})
	b.Run(fmt.Sprintf("warm/%s/seeds=%d", scenario, seeds), func(b *testing.B) {
		_, ts := newBenchServer(b)
		url := fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d", ts.URL, scenario, seeds)
		benchGet(b, url) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchGet(b, url)
		}
	})

	// The overlap pair shares one window size so the ns/op ratio is the
	// warm-overlap speedup.
	const (
		window = 64
		primed = 512 // corpus positions primed before the overlap loop
	)
	seedStride := workload.Seeds(1, 2)[1] - workload.Seeds(1, 2)[0]
	b.Run(fmt.Sprintf("overlap-cold/%s/seeds=%d", scenario, window), func(b *testing.B) {
		_, ts := newBenchServer(b)
		for i := 0; i < b.N; i++ {
			benchGet(b, fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d&seedBase=%d", ts.URL, scenario, window, 1+i*100000000))
		}
	})
	b.Run(fmt.Sprintf("overlap/%s/seeds=%d", scenario, window), func(b *testing.B) {
		st, err := store.Open("", store.Options{MaxMemEntries: 4 * primed})
		if err != nil {
			b.Fatal(err)
		}
		srv, err := server.New(server.Config{Store: st})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() { ts.Close(); srv.Close() })
		// Prime corpus positions 0..primed-1 in a few large windows.
		for base := 0; base < primed; base += window {
			benchGet(b, fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d&seedBase=%d", ts.URL, scenario, window, 1+int64(base)*seedStride))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Slide by half a window per iteration: every request overlaps
			// its neighbours by 50% and is fully covered by the corpus.
			base := (int64(i) * window / 2) % int64(primed-window)
			benchGet(b, fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d&seedBase=%d", ts.URL, scenario, window, 1+base*seedStride))
		}
		b.StopTimer()
		if ss := srv.SchedulerStats(); ss.SeedsComputed != primed {
			b.Fatalf("overlap loop recomputed seeds: %d computed for %d primed", ss.SeedsComputed, primed)
		}
	})
}

// BenchmarkStoreMultiGet measures the batched corpus read path on
// seed-record-sized entries: the memory layer under one lock acquisition,
// and the sharded disk layer with the memory layer disabled.
func BenchmarkStoreMultiGet(b *testing.B) {
	runs := codecCorpus(b)
	const entries, batch = 1024, 256
	keys := make([]store.Key, entries)
	payloads := make([][]byte, entries)
	for i := range keys {
		keys[i] = store.SeedKeySpec("scenario:bench", "", int64(i)).Key()
		payloads[i] = store.EncodeRun(runs[i%len(runs)])
	}
	batchKeys := make([]store.Key, batch)
	for i := range batchKeys {
		batchKeys[i] = keys[(i*7)%entries]
	}

	run := func(b *testing.B, s *store.Store) {
		if failed, err := s.PutMulti(keys, payloads); failed != 0 {
			b.Fatalf("PutMulti: %d failed: %v", failed, err)
		}
		// Return retained heap to the OS and fault the batch back in before
		// timing: earlier benchmarks' multi-GB churn otherwise keeps the
		// process large enough that the container evicts these files from
		// the page cache, and the timed loop measures eviction, not reads.
		debug.FreeOSMemory()
		s.GetMulti(batchKeys)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			got := s.GetMulti(batchKeys)
			for j := range got {
				if got[j] == nil {
					b.Fatalf("batch key %d missed", j)
				}
			}
		}
	}
	b.Run(fmt.Sprintf("mem/batch=%d", batch), func(b *testing.B) {
		s, err := store.Open("", store.Options{MaxMemEntries: 2 * entries, MaxMemBytes: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		run(b, s)
	})
	b.Run(fmt.Sprintf("disk/batch=%d", batch), func(b *testing.B) {
		s, err := store.Open(b.TempDir(), store.Options{MaxMemEntries: -1})
		if err != nil {
			b.Fatal(err)
		}
		run(b, s)
	})
}

// BenchmarkSchedulerDuplicates measures the scheduler under 64 concurrent
// duplicate requests per operation: cold (each round a fresh key, so
// singleflight coalesces 64 requests onto one fleet computation) and warm
// (all 64 served from the store).
func BenchmarkSchedulerDuplicates(b *testing.B) {
	const dups = 64
	fire := func(b *testing.B, url string) {
		var wg sync.WaitGroup
		errs := make([]error, dups)
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				resp, err := http.Get(url)
				if err != nil {
					errs[d] = err
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				if resp.StatusCode != http.StatusOK {
					errs[d] = fmt.Errorf("HTTP %d", resp.StatusCode)
				}
			}(d)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run(fmt.Sprintf("cold/dups=%d", dups), func(b *testing.B) {
		srv, ts := newBenchServer(b)
		for i := 0; i < b.N; i++ {
			fire(b, fmt.Sprintf("%s/v1/sweep?scenario=prop2.3-nudc&seeds=8&seedBase=%d", ts.URL, 1+i*100000))
		}
		b.StopTimer()
		ss := srv.SchedulerStats()
		if ss.Computed != uint64(b.N) {
			b.Fatalf("computed %d results for %d cold rounds (singleflight must compute once per round)", ss.Computed, b.N)
		}
		b.ReportMetric(float64(ss.Coalesced+ss.FullHits)/float64(b.N), "coalesced/op")
	})
	b.Run(fmt.Sprintf("warm/dups=%d", dups), func(b *testing.B) {
		_, ts := newBenchServer(b)
		url := ts.URL + "/v1/sweep?scenario=prop2.3-nudc&seeds=8"
		benchGet(b, url) // prime the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fire(b, url)
		}
	})
}

// benchGetWire is benchGet with an Accept header, returning the response
// body's size on the wire.
func benchGetWire(b *testing.B, url, accept string) int64 {
	b.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		b.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("HTTP %d", resp.StatusCode)
	}
	return n
}

// BenchmarkServerWire compares the negotiated response formats on /v1/sweep,
// reporting the body size on the wire alongside the latency.  The warm pair
// at a wide window is the tentpole measurement: warm-bin replays the stored
// container byte-for-byte (no decode, no re-encode), so both its latency and
// its wire size are the floor the JSON path is measured against.
func BenchmarkServerWire(b *testing.B) {
	const scenario = "prop2.3-nudc"
	formats := []struct{ name, accept string }{
		{"json", ""},
		{"bin", "application/x-udc-bin"},
		{"ndjson", "application/x-ndjson"},
		{"bin-stream", "application/x-udc-bin-stream"},
	}

	const coldSeeds = 8
	for _, f := range formats {
		b.Run(fmt.Sprintf("cold-%s/%s/seeds=%d", f.name, scenario, coldSeeds), func(b *testing.B) {
			_, ts := newBenchServer(b)
			var wire int64
			for i := 0; i < b.N; i++ {
				wire += benchGetWire(b, fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d&seedBase=%d",
					ts.URL, scenario, coldSeeds, 1+i*100000), f.accept)
			}
			b.ReportMetric(float64(wire)/float64(b.N), "wirebytes/op")
		})
	}

	const window = 512
	for _, f := range formats {
		b.Run(fmt.Sprintf("warm-%s/%s/seeds=%d", f.name, scenario, window), func(b *testing.B) {
			_, ts := newBenchServer(b)
			url := fmt.Sprintf("%s/v1/sweep?scenario=%s&seeds=%d", ts.URL, scenario, window)
			benchGet(b, url) // prime the window record
			b.ResetTimer()
			var wire int64
			for i := 0; i < b.N; i++ {
				wire += benchGetWire(b, url, f.accept)
			}
			b.ReportMetric(float64(wire)/float64(b.N), "wirebytes/op")
		})
	}
}
