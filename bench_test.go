package repro_test

// The benchmark harness regenerates the paper's evaluation:
//
//   - BenchmarkTable1/... : one benchmark per cell of Table 1 (the paper's
//     only table; it has no figures).  Each cell sweeps its paper-sufficient
//     detector/protocol combination over b.N fresh seeds — distributed over
//     the parallel sweep runner, whose aggregates are byte-identical to a
//     serial sweep — and reports coordination success, message cost and
//     latency as custom metrics, so the table's shape (which detector class
//     suffices where) can be read off the benchmark output.
//   - BenchmarkProp*/BenchmarkCor*/BenchmarkTheorem*: one benchmark per
//     proposition or theorem with executable content (E2-E8 in DESIGN.md),
//     running the registry's named scenarios serially on one reused engine
//     (these track single-run engine performance).
//   - BenchmarkUDCvsConsensus: the cost comparison the introduction motivates
//     (E9).
//   - BenchmarkAblation*: design-choice ablations called out in DESIGN.md
//     (drop rate, retransmission period, detector query period, and the
//     weak-to-strong detector conversions).
//
// All protocols, oracles and scenario shapes are resolved through
// internal/registry, so the benchmarks exercise exactly the constructions the
// commands ship.  Absolute numbers depend on the simulator, not on the
// authors' testbed; the quantities to compare are the relative metrics
// (ok-rate, msgs/run, latency-steps) across benchmarks.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/epistemic"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/sim"
	"repro/internal/table1"
	"repro/internal/workload"
)

// runSpecOnce executes one seed of a spec on the shared engine and reports
// per-run metrics.
func runSpecOnce(b *testing.B, eng *sim.Engine, spec workload.Spec, seed int64, eval workload.Evaluator, agg *benchAgg) {
	b.Helper()
	res, err := workload.ExecuteWith(eng, spec, seed)
	if err != nil {
		b.Fatalf("execute: %v", err)
	}
	agg.add(workload.ScoreRun(res, seed, eval))
}

// benchAgg accumulates custom benchmark metrics.
type benchAgg struct {
	runs         int
	ok           int
	messages     float64
	latency      float64
	latencyCount int
}

// add folds one run outcome into the aggregate.
func (a *benchAgg) add(o workload.RunOutcome) {
	a.runs++
	a.messages += float64(o.Stats.MessagesSent)
	if o.OK() {
		a.ok++
	}
	a.latency += float64(o.LatencySum)
	a.latencyCount += o.LatencyActions
}

// report emits the aggregated custom metrics.
func (a benchAgg) report(b *testing.B) {
	b.Helper()
	if a.runs == 0 {
		return
	}
	b.ReportMetric(float64(a.ok)/float64(a.runs), "ok-rate")
	b.ReportMetric(a.messages/float64(a.runs), "msgs/run")
	if a.latencyCount > 0 {
		b.ReportMetric(a.latency/float64(a.latencyCount), "latency-steps")
	}
}

// benchSerialSpec runs one seed per iteration on a reused engine.
func benchSerialSpec(b *testing.B, spec workload.Spec, eval workload.Evaluator, seedOf func(i int) int64) {
	b.Helper()
	eng := sim.NewEngine()
	var agg benchAgg
	for i := 0; i < b.N; i++ {
		runSpecOnce(b, eng, spec, seedOf(i), eval, &agg)
	}
	agg.report(b)
}

// benchScenario runs the named registry scenario serially, one seed per
// iteration.
func benchScenario(b *testing.B, name string) {
	b.Helper()
	sc := registry.MustScenario(name)
	benchSerialSpec(b, sc.Spec, sc.Eval, func(i int) int64 { return int64(i) + 1 })
}

// BenchmarkTable1 regenerates Table 1: one sub-benchmark per cell, sweeping
// the paper-sufficient scenario over b.N seeds on the parallel sweep runner.
func BenchmarkTable1(b *testing.B) {
	params := table1.Params{N: 6, Seeds: 1, BaseSeed: 5000, MaxSteps: 400}
	for _, cell := range table1.Cells(params) {
		name := fmt.Sprintf("%s/%s/%s", cell.Channel, cell.Problem, cell.Regime)
		spec := cell.Minimal.Spec
		eval := cell.Minimal.Eval
		b.Run(name, func(b *testing.B) {
			seeds := make([]int64, b.N)
			for i := range seeds {
				seeds[i] = params.BaseSeed + int64(i)
			}
			result, err := workload.Runner{}.Sweep(spec, seeds, eval)
			if err != nil {
				b.Fatalf("sweep: %v", err)
			}
			var agg benchAgg
			for _, o := range result.Outcomes {
				agg.add(o)
			}
			agg.report(b)
		})
	}
}

// BenchmarkAdversarySweep sweeps representative adversary scenarios over the
// parallel runner — one per shaper signature (storm drops, duplication,
// extra-delay scheduling) plus a deterministic targeted schedule — so the
// recorded perf trajectory covers the adversary subsystem's hot path
// alongside the Table 1 baseline.
func BenchmarkAdversarySweep(b *testing.B) {
	names := []string{
		"adv-burst-loss-strong-udc",
		"adv-duplicate-storm-nudc",
		"adv-skewed-delays-strong-udc",
		"adv-targeted-consensus",
	}
	for _, name := range names {
		sc := registry.MustScenario(name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			seeds := make([]int64, b.N)
			for i := range seeds {
				seeds[i] = int64(i) + 1
			}
			result, err := workload.Runner{}.Sweep(sc.Spec, seeds, sc.Eval)
			if err != nil {
				b.Fatalf("sweep: %v", err)
			}
			var agg benchAgg
			for _, o := range result.Outcomes {
				agg.add(o)
			}
			agg.report(b)
		})
	}
}

// BenchmarkProp23NUDC benchmarks the no-detector nUDC protocol over fair-lossy
// channels with unbounded failures (E2).
func BenchmarkProp23NUDC(b *testing.B) {
	benchScenario(b, "prop2.3-nudc")
}

// BenchmarkProp24ReliableUDC benchmarks the no-detector UDC protocol over
// reliable channels (E3).
func BenchmarkProp24ReliableUDC(b *testing.B) {
	benchScenario(b, "prop2.4-reliable-udc")
}

// BenchmarkProp31StrongFDUDC benchmarks UDC with a strong detector over lossy
// channels and up to n-1 failures (E4).
func BenchmarkProp31StrongFDUDC(b *testing.B) {
	benchScenario(b, "prop3.1-strong-udc")
}

// BenchmarkProp41TUsefulUDC benchmarks UDC with a t-useful generalized
// detector for an intermediate failure bound (E7).
func BenchmarkProp41TUsefulUDC(b *testing.B) {
	benchScenario(b, "prop4.1-tuseful-udc")
}

// BenchmarkCor42QuorumUDC benchmarks the detector-free quorum protocol for
// t < n/2 (E7).
func BenchmarkCor42QuorumUDC(b *testing.B) {
	benchScenario(b, "cor4.2-quorum-udc")
}

// buildSystem samples a UDC system for the extraction benchmarks.
func buildSystem(b *testing.B, spec workload.Spec, runs int, baseSeed int64) *epistemic.System {
	b.Helper()
	eng := sim.NewEngine()
	out := make(model.System, 0, runs)
	for _, seed := range workload.Seeds(baseSeed, runs) {
		res, err := workload.ExecuteWith(eng, spec, seed)
		if err != nil {
			b.Fatalf("execute: %v", err)
		}
		out = append(out, res.Run)
	}
	return epistemic.NewSystem(out)
}

// BenchmarkTheorem36Extraction benchmarks the perfect-detector simulation
// (construction P1-P3) over a sampled system, including the property check
// (E6).
func BenchmarkTheorem36Extraction(b *testing.B) {
	sys := buildSystem(b, registry.MustScenario("thm3.6-extraction").Spec, 10, 9000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulated := core.SimulatePerfectDetector(sys)
		violations := 0
		for _, r := range simulated {
			violations += len(fd.CheckPerfect(r))
		}
		if violations != 0 {
			b.Fatalf("simulated detector not perfect: %d violations", violations)
		}
	}
}

// BenchmarkTheorem43Extraction benchmarks the t-useful generalized detector
// simulation (construction P3') over a sampled system (E8).
func BenchmarkTheorem43Extraction(b *testing.B) {
	const t = 2
	sys := buildSystem(b, registry.MustScenario("thm4.3-extraction").Spec, 8, 9000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulated := core.SimulateTUsefulDetector(sys)
		violations := 0
		for _, r := range simulated {
			violations += len(fd.CheckGeneralizedStrongAccuracy(r))
			violations += len(fd.CheckTUseful(r, t))
		}
		if violations != 0 {
			b.Fatalf("simulated detector not %d-useful: %d violations", t, violations)
		}
	}
}

// BenchmarkExtraction tracks the knowledge-extraction hot path on the
// standing kx-* sample shape (n=7, 64 runs): building the interned epistemic
// index, the two knowledge-based run transforms over it (serial, so the
// recorded trajectory tracks the per-run cost), and the full parallel
// pipeline.  `make bench` records it to BENCH_<n>.json alongside the sweeps.
func BenchmarkExtraction(b *testing.B) {
	perfect := registry.MustExtraction("kx-perfect").Extraction
	tuseful := registry.MustExtraction("kx-tuseful").Extraction
	runs := buildSystem(b, perfect.Source, perfect.Runs, perfect.BaseSeed).Runs()

	b.Run("index/n=7/runs=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := epistemic.NewSystem(runs)
			if sys.Size() != len(runs) {
				b.Fatalf("index dropped runs")
			}
		}
	})

	// The incremental-index pair: rebuilding the doubled window from scratch
	// versus feeding only the delta to System.Add — the server's
	// extraction-source reuse path when a cached window grows.
	grown := buildSystem(b, perfect.Source, 2*perfect.Runs, perfect.BaseSeed).Runs()
	b.Run("index-rebuild/n=7/runs=128", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := epistemic.NewSystem(grown)
			if sys.Size() != len(grown) {
				b.Fatalf("index dropped runs")
			}
		}
	})
	b.Run("index-extend/n=7/runs=64to128", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sys := epistemic.NewSystem(grown[:perfect.Runs])
			b.StartTimer()
			sys.Add(grown[perfect.Runs:])
			if sys.Size() != len(grown) {
				b.Fatalf("index dropped runs")
			}
		}
	})

	sys := epistemic.NewSystem(runs)
	st := sys.Stats()
	b.Run("perfect-transform/n=7/runs=64", func(b *testing.B) {
		b.ReportMetric(float64(st.Classes), "classes")
		for i := 0; i < b.N; i++ {
			if out := core.SimulatePerfectDetector(sys); len(out) != sys.Size() {
				b.Fatalf("transform dropped runs")
			}
		}
	})
	b.Run("tuseful-transform/n=7/runs=64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if out := core.SimulateTUsefulDetector(sys); len(out) != sys.Size() {
				b.Fatalf("transform dropped runs")
			}
		}
	})

	for _, bench := range []struct {
		name string
		ext  workload.Extraction
	}{{"pipeline/kx-perfect", perfect}, {"pipeline/kx-tuseful", tuseful}} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := workload.Runner{}.Extract(bench.ext)
				if err != nil {
					b.Fatalf("extract: %v", err)
				}
				if !res.OK() {
					b.Fatalf("extracted detector violated its properties")
				}
			}
		})
	}
}

// BenchmarkEpistemicKnownCrashed benchmarks the knowledge queries that drive
// the extraction (the hot path of Theorems 3.6/4.3).
func BenchmarkEpistemicKnownCrashed(b *testing.B) {
	spec := workload.Spec{
		Name: "epistemic-bench", N: 5, MaxSteps: 250, TickEvery: 2, SuspectEvery: 3,
		Network:  sim.FairLossyNetwork(0.25),
		Oracle:   registry.MustOracle("strong", registry.Options{Seed: 3, FalseSuspicionRate: 0.2}),
		Protocol: registry.MustProtocol("strong", registry.Options{}), Actions: 5,
		MaxFailures: 2, ExactFailures: true, CrashEnd: 70,
	}
	sys := buildSystem(b, spec, 8, 9000)
	r := sys.RunAt(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := i % (r.Horizon + 1)
		for p := model.ProcID(0); int(p) < sys.N(); p++ {
			_ = sys.KnownCrashed(p, epistemic.Point{Run: 0, Time: m})
		}
	}
}

// BenchmarkUDCvsConsensus compares the cost of coordinating one action with
// UDC against deciding one value with consensus on the same substrate (E9),
// across system sizes.
func BenchmarkUDCvsConsensus(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		udcSpec := workload.Spec{
			Name: "udc-cost", N: n, MaxSteps: 300, TickEvery: 2, SuspectEvery: 3,
			Network:  sim.FairLossyNetwork(0.3),
			Oracle:   registry.MustOracle("strong", registry.Options{Seed: 5, FalseSuspicionRate: 0.1}),
			Protocol: registry.MustProtocol("strong", registry.Options{}), Actions: 1, LastInitTime: 20,
			MaxFailures: 1, ExactFailures: true, CrashStart: 30, CrashEnd: 60,
		}
		consSpec := workload.Spec{
			Name: "consensus-cost", N: n, MaxSteps: 300, TickEvery: 2, SuspectEvery: 3,
			Network:  sim.FairLossyNetwork(0.3),
			Oracle:   registry.MustOracle("strong", registry.Options{Seed: 5, FalseSuspicionRate: 0.1}),
			Protocol: registry.MustProtocol("consensus-rotating", registry.Options{N: n}), Actions: 0,
			MaxFailures: 1, ExactFailures: true, CrashStart: 30, CrashEnd: 60,
		}
		consEval := registry.MustEvaluator("consensus", registry.Options{N: n})
		b.Run(fmt.Sprintf("UDC/n=%d", n), func(b *testing.B) {
			benchSerialSpec(b, udcSpec, workload.UDCEvaluator, func(i int) int64 { return int64(i) + 1 })
		})
		b.Run(fmt.Sprintf("consensus/n=%d", n), func(b *testing.B) {
			benchSerialSpec(b, consSpec, consEval, func(i int) int64 { return int64(i) + 1 })
		})
	}
}

// udcBenchSpec is the shared shape of the ablation benchmarks' workloads.
func udcBenchSpec(name string, n int, oracle fd.Oracle, factory sim.ProtocolFactory, failures int, net sim.NetworkConfig) workload.Spec {
	return workload.Spec{
		Name:          name,
		N:             n,
		MaxSteps:      400,
		TickEvery:     2,
		SuspectEvery:  3,
		Network:       net,
		Oracle:        oracle,
		Protocol:      factory,
		Actions:       n,
		MaxFailures:   failures,
		ExactFailures: true,
		CrashEnd:      100,
	}
}

// BenchmarkAblationDropRate sweeps the channel loss rate for the
// strong-detector UDC protocol.
func BenchmarkAblationDropRate(b *testing.B) {
	for _, drop := range []float64{0, 0.3, 0.6} {
		spec := udcBenchSpec(fmt.Sprintf("drop-%.1f", drop), 6,
			registry.MustOracle("strong", registry.Options{Seed: 2}),
			registry.MustProtocol("strong", registry.Options{}), 3, sim.FairLossyNetwork(drop))
		b.Run(fmt.Sprintf("drop=%.1f", drop), func(b *testing.B) {
			benchSerialSpec(b, spec, workload.UDCEvaluator, func(i int) int64 { return int64(i) + 1 })
		})
	}
}

// BenchmarkAblationRetransmission sweeps the retransmission (tick) period.
func BenchmarkAblationRetransmission(b *testing.B) {
	for _, tick := range []int{1, 2, 5, 10} {
		spec := udcBenchSpec("tick", 6,
			registry.MustOracle("strong", registry.Options{Seed: 2}),
			registry.MustProtocol("strong", registry.Options{}), 3, sim.FairLossyNetwork(0.3))
		spec.TickEvery = tick
		b.Run(fmt.Sprintf("tick=%d", tick), func(b *testing.B) {
			benchSerialSpec(b, spec, workload.UDCEvaluator, func(i int) int64 { return int64(i) + 1 })
		})
	}
}

// BenchmarkAblationDetectorClass compares UDC performance across the detector
// classes of Section 2.2 (all of which suffice, per Cor. 3.2, once the
// protocol accumulates suspicions), resolving every class from the registry.
func BenchmarkAblationDetectorClass(b *testing.B) {
	oracleNames := []string{
		"perfect",
		"strong",
		"impermanent-strong",
		"weak",
		"impermanent-weak",
		"correct-set-strong",
	}
	for _, name := range oracleNames {
		oracle := registry.MustOracle(name, registry.Options{Seed: 2})
		spec := udcBenchSpec("detector-"+name, 6, oracle,
			registry.MustProtocol("strong", registry.Options{}), 4, sim.FairLossyNetwork(0.3))
		b.Run(name, func(b *testing.B) {
			benchSerialSpec(b, spec, workload.UDCEvaluator, func(i int) int64 { return int64(i) + 1 })
		})
	}
}

// BenchmarkCrossoverNoDetectorUDC sweeps the failure bound t for the
// detector-free quorum protocol under an adversarial workload (early crashes,
// heavy loss).  The ok-rate series reproduces the Gopal-Toueg / Table 1
// boundary: coordination is reliably uniform for t < n/2 and starts failing
// once half or more of the processes may crash.
func BenchmarkCrossoverNoDetectorUDC(b *testing.B) {
	const n = 6
	for t := 1; t < n; t++ {
		spec := workload.Spec{
			Name:          fmt.Sprintf("crossover-t%d", t),
			N:             n,
			MaxSteps:      700,
			TickEvery:     2,
			Network:       sim.NetworkConfig{DropProbability: 0.85, MaxDelay: 6, FairnessBound: 50},
			Protocol:      registry.MustProtocol("quorum", registry.Options{T: t}),
			Actions:       n,
			LastInitTime:  25,
			MaxFailures:   t,
			ExactFailures: true,
			CrashStart:    2,
			CrashEnd:      35,
		}
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			benchSerialSpec(b, spec, workload.UDCEvaluator, func(i int) int64 { return int64(i)*13 + 1 })
		})
	}
}

// BenchmarkAblationQuiescence compares the always-retransmitting protocol of
// Proposition 3.1 against the footnote-11 quiescent variant under a strongly
// accurate detector: same coordination outcome, a fraction of the messages.
func BenchmarkAblationQuiescence(b *testing.B) {
	for _, name := range []string{"retransmit-udc", "quiescent-udc"} {
		b.Run(name, func(b *testing.B) {
			benchScenario(b, name)
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (steps and events
// per second) on one reused engine, independent of any property checking.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := registry.MustScenario("throughput").Spec
	eng := sim.NewEngine()
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		res, err := workload.ExecuteWith(eng, spec, int64(i)+1)
		if err != nil {
			b.Fatalf("execute: %v", err)
		}
		events += res.Run.EventCount()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkParallelSweep measures sweep throughput end to end: b.N seeds of
// the Prop 3.1 scenario distributed over the worker pool, the shape every
// Table 1 row and ablation ultimately reduces to.
func BenchmarkParallelSweep(b *testing.B) {
	sc := registry.MustScenario("prop3.1-strong-udc")
	seeds := make([]int64, b.N)
	for i := range seeds {
		seeds[i] = int64(i) + 1
	}
	b.ResetTimer()
	result, err := workload.Runner{}.Sweep(sc.Spec, seeds, sc.Eval)
	if err != nil {
		b.Fatalf("sweep: %v", err)
	}
	var agg benchAgg
	for _, o := range result.Outcomes {
		agg.add(o)
	}
	agg.report(b)
}
