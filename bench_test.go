package repro_test

// The benchmark harness regenerates the paper's evaluation:
//
//   - BenchmarkTable1/... : one benchmark per cell of Table 1 (the paper's
//     only table; it has no figures).  Each iteration runs the cell's
//     paper-sufficient detector/protocol combination on a fresh seed and
//     reports coordination success, message cost and latency as custom
//     metrics, so the table's shape (which detector class suffices where) can
//     be read off the benchmark output.
//   - BenchmarkProp*/BenchmarkCor*/BenchmarkTheorem*: one benchmark per
//     proposition or theorem with executable content (E2-E8 in DESIGN.md).
//   - BenchmarkUDCvsConsensus: the cost comparison the introduction motivates
//     (E9).
//   - BenchmarkAblation*: design-choice ablations called out in DESIGN.md
//     (drop rate, retransmission period, detector query period, and the
//     weak-to-strong detector conversions).
//
// Absolute numbers depend on the simulator, not on the authors' testbed; the
// quantities to compare are the relative metrics (ok-rate, msgs/run,
// latency-steps) across benchmarks.

import (
	"fmt"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/epistemic"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/table1"
	"repro/internal/workload"
)

// runSpecOnce executes one seed of a spec and reports per-run metrics.
func runSpecOnce(b *testing.B, spec workload.Spec, seed int64, eval workload.Evaluator, agg *benchAgg) {
	b.Helper()
	res, err := workload.Execute(spec, seed)
	if err != nil {
		b.Fatalf("execute: %v", err)
	}
	violations := eval(res.Run)
	agg.runs++
	agg.messages += float64(res.Stats.MessagesSent)
	if len(violations) == 0 {
		agg.ok++
	}
	for _, a := range res.Run.InitiatedActions() {
		if lat, complete := core.CoordinationLatency(res.Run, a); complete {
			agg.latency += float64(lat)
			agg.latencyCount++
		}
	}
}

// benchAgg accumulates custom benchmark metrics.
type benchAgg struct {
	runs         int
	ok           int
	messages     float64
	latency      float64
	latencyCount int
}

// report emits the aggregated custom metrics.
func (a benchAgg) report(b *testing.B) {
	b.Helper()
	if a.runs == 0 {
		return
	}
	b.ReportMetric(float64(a.ok)/float64(a.runs), "ok-rate")
	b.ReportMetric(a.messages/float64(a.runs), "msgs/run")
	if a.latencyCount > 0 {
		b.ReportMetric(a.latency/float64(a.latencyCount), "latency-steps")
	}
}

// BenchmarkTable1 regenerates Table 1: one sub-benchmark per cell, running the
// paper-sufficient scenario.
func BenchmarkTable1(b *testing.B) {
	params := table1.Params{N: 6, Seeds: 1, BaseSeed: 5000, MaxSteps: 400}
	for _, cell := range table1.Cells(params) {
		name := fmt.Sprintf("%s/%s/%s", cell.Channel, cell.Problem, cell.Regime)
		spec := cell.Minimal.Spec
		eval := cell.Minimal.Eval
		b.Run(name, func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, spec, params.BaseSeed+int64(i), eval, &agg)
			}
			agg.report(b)
		})
	}
}

// udcBenchSpec is the shared shape of the per-proposition UDC benchmarks.
func udcBenchSpec(name string, n int, oracle fd.Oracle, factory sim.ProtocolFactory, failures int, net sim.NetworkConfig) workload.Spec {
	return workload.Spec{
		Name:          name,
		N:             n,
		MaxSteps:      400,
		TickEvery:     2,
		SuspectEvery:  3,
		Network:       net,
		Oracle:        oracle,
		Protocol:      factory,
		Actions:       n,
		MaxFailures:   failures,
		ExactFailures: true,
		CrashEnd:      100,
	}
}

// BenchmarkProp23NUDC benchmarks the no-detector nUDC protocol over fair-lossy
// channels with unbounded failures (E2).
func BenchmarkProp23NUDC(b *testing.B) {
	spec := udcBenchSpec("prop2.3", 6, nil, core.NewNUDC, 5, sim.FairLossyNetwork(0.3))
	var agg benchAgg
	for i := 0; i < b.N; i++ {
		runSpecOnce(b, spec, int64(i)+1, workload.NUDCEvaluator, &agg)
	}
	agg.report(b)
}

// BenchmarkProp24ReliableUDC benchmarks the no-detector UDC protocol over
// reliable channels (E3).
func BenchmarkProp24ReliableUDC(b *testing.B) {
	spec := udcBenchSpec("prop2.4", 6, nil, core.NewReliableUDC, 5, sim.ReliableNetwork())
	var agg benchAgg
	for i := 0; i < b.N; i++ {
		runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
	}
	agg.report(b)
}

// BenchmarkProp31StrongFDUDC benchmarks UDC with a strong detector over lossy
// channels and up to n-1 failures (E4).
func BenchmarkProp31StrongFDUDC(b *testing.B) {
	spec := udcBenchSpec("prop3.1", 6,
		fd.StrongOracle{FalseSuspicionRate: 0.15, Seed: 1}, core.NewStrongFDUDC, 5, sim.FairLossyNetwork(0.3))
	var agg benchAgg
	for i := 0; i < b.N; i++ {
		runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
	}
	agg.report(b)
}

// BenchmarkProp41TUsefulUDC benchmarks UDC with a t-useful generalized
// detector for an intermediate failure bound (E7).
func BenchmarkProp41TUsefulUDC(b *testing.B) {
	spec := udcBenchSpec("prop4.1", 7, fd.FaultySetOracle{}, core.NewTUsefulUDC(4), 4, sim.FairLossyNetwork(0.3))
	var agg benchAgg
	for i := 0; i < b.N; i++ {
		runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
	}
	agg.report(b)
}

// BenchmarkCor42QuorumUDC benchmarks the detector-free quorum protocol for
// t < n/2 (E7).
func BenchmarkCor42QuorumUDC(b *testing.B) {
	spec := udcBenchSpec("cor4.2", 7, nil, core.NewQuorumUDC(3), 3, sim.FairLossyNetwork(0.3))
	var agg benchAgg
	for i := 0; i < b.N; i++ {
		runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
	}
	agg.report(b)
}

// buildSystem samples a UDC system for the extraction benchmarks.
func buildSystem(b *testing.B, spec workload.Spec, runs int) *epistemic.System {
	b.Helper()
	out := make(model.System, 0, runs)
	for _, seed := range workload.Seeds(9000, runs) {
		res, err := workload.Execute(spec, seed)
		if err != nil {
			b.Fatalf("execute: %v", err)
		}
		out = append(out, res.Run)
	}
	return epistemic.NewSystem(out)
}

// BenchmarkTheorem36Extraction benchmarks the perfect-detector simulation
// (construction P1-P3) over a sampled system, including the property check
// (E6).
func BenchmarkTheorem36Extraction(b *testing.B) {
	spec := workload.Spec{
		Name: "thm3.6-bench", N: 5, MaxSteps: 300, TickEvery: 2, SuspectEvery: 3,
		Network:  sim.FairLossyNetwork(0.25),
		Oracle:   fd.StrongOracle{FalseSuspicionRate: 0.3, Seed: 17},
		Protocol: core.NewStrongFDUDC, Actions: 8, LastInitTime: 200,
		MaxFailures: 3, ExactFailures: true, CrashEnd: 80,
	}
	sys := buildSystem(b, spec, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulated := core.SimulatePerfectDetector(sys)
		violations := 0
		for _, r := range simulated {
			violations += len(fd.CheckPerfect(r))
		}
		if violations != 0 {
			b.Fatalf("simulated detector not perfect: %d violations", violations)
		}
	}
}

// BenchmarkTheorem43Extraction benchmarks the t-useful generalized detector
// simulation (construction P3') over a sampled system (E8).
func BenchmarkTheorem43Extraction(b *testing.B) {
	const t = 2
	spec := workload.Spec{
		Name: "thm4.3-bench", N: 5, MaxSteps: 450, TickEvery: 2, SuspectEvery: 3,
		Network:  sim.FairLossyNetwork(0.25),
		Oracle:   fd.FaultySetOracle{},
		Protocol: core.NewTUsefulUDC(t), Actions: 8, LastInitTime: 300,
		MaxFailures: t, ExactFailures: true, CrashEnd: 100,
	}
	sys := buildSystem(b, spec, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simulated := core.SimulateTUsefulDetector(sys)
		violations := 0
		for _, r := range simulated {
			violations += len(fd.CheckGeneralizedStrongAccuracy(r))
			violations += len(fd.CheckTUseful(r, t))
		}
		if violations != 0 {
			b.Fatalf("simulated detector not %d-useful: %d violations", t, violations)
		}
	}
}

// BenchmarkEpistemicKnownCrashed benchmarks the knowledge queries that drive
// the extraction (the hot path of Theorems 3.6/4.3).
func BenchmarkEpistemicKnownCrashed(b *testing.B) {
	spec := workload.Spec{
		Name: "epistemic-bench", N: 5, MaxSteps: 250, TickEvery: 2, SuspectEvery: 3,
		Network:  sim.FairLossyNetwork(0.25),
		Oracle:   fd.StrongOracle{FalseSuspicionRate: 0.2, Seed: 3},
		Protocol: core.NewStrongFDUDC, Actions: 5,
		MaxFailures: 2, ExactFailures: true, CrashEnd: 70,
	}
	sys := buildSystem(b, spec, 8)
	r := sys.RunAt(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := i % (r.Horizon + 1)
		for p := model.ProcID(0); int(p) < sys.N(); p++ {
			_ = sys.KnownCrashed(p, epistemic.Point{Run: 0, Time: m})
		}
	}
}

// BenchmarkUDCvsConsensus compares the cost of coordinating one action with
// UDC against deciding one value with consensus on the same substrate (E9),
// across system sizes.
func BenchmarkUDCvsConsensus(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10} {
		proposals := make(map[model.ProcID]int, n)
		for i := 0; i < n; i++ {
			proposals[model.ProcID(i)] = 100 + i
		}
		udcSpec := workload.Spec{
			Name: "udc-cost", N: n, MaxSteps: 300, TickEvery: 2, SuspectEvery: 3,
			Network:  sim.FairLossyNetwork(0.3),
			Oracle:   fd.StrongOracle{FalseSuspicionRate: 0.1, Seed: 5},
			Protocol: core.NewStrongFDUDC, Actions: 1, LastInitTime: 20,
			MaxFailures: 1, ExactFailures: true, CrashStart: 30, CrashEnd: 60,
		}
		consSpec := workload.Spec{
			Name: "consensus-cost", N: n, MaxSteps: 300, TickEvery: 2, SuspectEvery: 3,
			Network:  sim.FairLossyNetwork(0.3),
			Oracle:   fd.StrongOracle{FalseSuspicionRate: 0.1, Seed: 5},
			Protocol: consensus.NewRotating(proposals), Actions: 0,
			MaxFailures: 1, ExactFailures: true, CrashStart: 30, CrashEnd: 60,
		}
		consEval := func(r *model.Run) []model.Violation { return consensus.CheckConsensus(r, proposals) }
		b.Run(fmt.Sprintf("UDC/n=%d", n), func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, udcSpec, int64(i)+1, workload.UDCEvaluator, &agg)
			}
			agg.report(b)
		})
		b.Run(fmt.Sprintf("consensus/n=%d", n), func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, consSpec, int64(i)+1, consEval, &agg)
			}
			agg.report(b)
		})
	}
}

// BenchmarkAblationDropRate sweeps the channel loss rate for the
// strong-detector UDC protocol.
func BenchmarkAblationDropRate(b *testing.B) {
	for _, drop := range []float64{0, 0.3, 0.6} {
		spec := udcBenchSpec(fmt.Sprintf("drop-%.1f", drop), 6,
			fd.StrongOracle{FalseSuspicionRate: 0.15, Seed: 2}, core.NewStrongFDUDC, 3, sim.FairLossyNetwork(drop))
		b.Run(fmt.Sprintf("drop=%.1f", drop), func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
			}
			agg.report(b)
		})
	}
}

// BenchmarkAblationRetransmission sweeps the retransmission (tick) period.
func BenchmarkAblationRetransmission(b *testing.B) {
	for _, tick := range []int{1, 2, 5, 10} {
		spec := udcBenchSpec("tick", 6,
			fd.StrongOracle{FalseSuspicionRate: 0.15, Seed: 2}, core.NewStrongFDUDC, 3, sim.FairLossyNetwork(0.3))
		spec.TickEvery = tick
		b.Run(fmt.Sprintf("tick=%d", tick), func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
			}
			agg.report(b)
		})
	}
}

// BenchmarkAblationDetectorClass compares UDC performance across the detector
// classes of Section 2.2 (all of which suffice, per Cor. 3.2, once the
// protocol accumulates suspicions).
func BenchmarkAblationDetectorClass(b *testing.B) {
	oracles := []struct {
		name   string
		oracle fd.Oracle
	}{
		{"perfect", fd.PerfectOracle{}},
		{"strong", fd.StrongOracle{FalseSuspicionRate: 0.15, Seed: 2}},
		{"impermanent-strong", fd.ImpermanentStrongOracle{Window: 4}},
		{"gossiped-weak", fd.GossipOracle{Inner: fd.WeakOracle{}, Delay: 3}},
		{"gossiped-impermanent-weak", fd.GossipOracle{Inner: fd.ImpermanentWeakOracle{Window: 4}, Delay: 3}},
		{"g-standard-correct-set", fd.CorrectSetOracle{Inner: fd.StrongOracle{FalseSuspicionRate: 0.15, Seed: 2}}},
	}
	for _, o := range oracles {
		spec := udcBenchSpec("detector-"+o.name, 6, o.oracle, core.NewStrongFDUDC, 4, sim.FairLossyNetwork(0.3))
		b.Run(o.name, func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
			}
			agg.report(b)
		})
	}
}

// BenchmarkCrossoverNoDetectorUDC sweeps the failure bound t for the
// detector-free quorum protocol under an adversarial workload (early crashes,
// heavy loss).  The ok-rate series reproduces the Gopal-Toueg / Table 1
// boundary: coordination is reliably uniform for t < n/2 and starts failing
// once half or more of the processes may crash.
func BenchmarkCrossoverNoDetectorUDC(b *testing.B) {
	const n = 6
	for t := 1; t < n; t++ {
		spec := workload.Spec{
			Name:          fmt.Sprintf("crossover-t%d", t),
			N:             n,
			MaxSteps:      700,
			TickEvery:     2,
			Network:       sim.NetworkConfig{DropProbability: 0.85, MaxDelay: 6, FairnessBound: 50},
			Protocol:      core.NewQuorumUDC(t),
			Actions:       n,
			LastInitTime:  25,
			MaxFailures:   t,
			ExactFailures: true,
			CrashStart:    2,
			CrashEnd:      35,
		}
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, spec, int64(i)*13+1, workload.UDCEvaluator, &agg)
			}
			agg.report(b)
		})
	}
}

// BenchmarkAblationQuiescence compares the always-retransmitting protocol of
// Proposition 3.1 against the footnote-11 quiescent variant under a strongly
// accurate detector: same coordination outcome, a fraction of the messages.
func BenchmarkAblationQuiescence(b *testing.B) {
	variants := []struct {
		name    string
		factory sim.ProtocolFactory
	}{
		{"retransmit-forever", core.NewStrongFDUDC},
		{"quiescent", core.NewQuiescentUDC},
	}
	for _, v := range variants {
		spec := udcBenchSpec("quiescence-"+v.name, 6, fd.PerfectOracle{}, v.factory, 3, sim.FairLossyNetwork(0.3))
		b.Run(v.name, func(b *testing.B) {
			var agg benchAgg
			for i := 0; i < b.N; i++ {
				runSpecOnce(b, spec, int64(i)+1, workload.UDCEvaluator, &agg)
			}
			agg.report(b)
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed (steps and events
// per second) independent of any property checking.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec := udcBenchSpec("throughput", 8, fd.PerfectOracle{}, core.NewStrongFDUDC, 2, sim.FairLossyNetwork(0.2))
	spec.MaxSteps = 500
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		res, err := workload.Execute(spec, int64(i)+1)
		if err != nil {
			b.Fatalf("execute: %v", err)
		}
		events += res.Run.EventCount()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}
