// Package repro is a simulation-and-verification reproduction of Halpern &
// Ricciardi, "A Knowledge-Theoretic Analysis of Uniform Distributed
// Coordination and Failure Detectors" (PODC 1999).
//
// The library implements the paper's formal model (internal/model), an
// asynchronous crash-failure simulator with fair-lossy channels built around
// a reusable engine (internal/sim), every failure-detector class the paper
// uses (internal/fd), the UDC/nUDC protocols and the knowledge-based
// failure-detector simulations of Theorems 3.6 and 4.3 (internal/core), an
// epistemic model checker for the paper's logic (internal/epistemic), the
// Chandra-Toueg consensus baselines (internal/consensus), a registry of named
// protocols, oracles and scenarios (internal/registry), a parallel sweep
// runner with deterministic aggregates (internal/workload), the Table 1
// reproduction harness (internal/table1), a dependency-free observability
// layer — Prometheus-format metrics, an exposition parser, the Server-Timing
// stage tracer, W3C traceparent identities with a tail-sampling trace log,
// and the admission token bucket behind udcd's serving path (internal/obs),
// the content-addressed run-corpus store with its binary codec,
// length-prefixed frame streams and shard-occupancy census (internal/store),
// the fleet toolkit — rendezvous shard assignment, a consecutive-failure
// suspicion detector with half-open probes, seeded-jitter backoff and a
// deterministic fault-injection transport (internal/fleet), and the udcd
// daemon itself — content negotiation across JSON/binary/streamed wire
// formats, seed-granular scheduling, queue-aware admission control,
// fault-tolerant fleet mode (sharded peers, claim RPCs, hedged reads,
// degraded-mode local fallback, /v1/fleet), graceful drain (/readyz),
// request-scoped tracing with span links across coalesced requests
// (/debug/traces), structured slog request logs and corpus introspection
// (/v1/corpus) (internal/server).  See README.md for a tour.
//
// The benchmarks in bench_test.go regenerate every row of the paper's only
// table (Table 1) plus per-proposition workloads and ablations; run them with
//
//	go test -bench=. -benchmem .
package repro
