GO ?= go
BENCHTIME ?= 10x

.PHONY: all build test race vet fmt-check smoke daemon-smoke metrics-smoke fleet-smoke bench bench-compare

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

smoke:
	$(GO) run ./cmd/udcsim -list-scenarios >/dev/null
	$(GO) run ./cmd/udcsim -list-adversaries >/dev/null
	$(GO) run ./cmd/udcsim -adversary burst-loss -protocol strong -n 5 -steps 300 -quiet
	$(GO) run ./cmd/fdextract -list-scenarios >/dev/null
	$(GO) run ./cmd/fdextract -scenario kx-perfect -runs 8 -workers 4 >/dev/null

# daemon-smoke boots udcd on a random port, sweeps the same request twice and
# asserts the second response is a byte-identical cache hit — the end-to-end
# check of the serving layer that CI also runs.
daemon-smoke:
	./scripts/daemon_smoke.sh

# metrics-smoke boots udcd, drives the corpus-backed routes, and asserts the
# /metrics families, scrape determinism and Server-Timing traces.
metrics-smoke:
	./scripts/metrics_smoke.sh

# fleet-smoke boots a 3-peer fleet, proves healthy and peer-killed sweeps are
# byte-identical to a cold single daemon, checks the failure counters on
# /metrics, and drains the coordinator cleanly on SIGTERM.
fleet-smoke:
	./scripts/fleet_smoke.sh

# bench runs the Table 1 benchmark, the adversary sweep, the
# knowledge-extraction benchmark and the serving-layer benchmarks (codec,
# cold/warm daemon sweeps, duplicate-request scheduling), and records the
# next BENCH_<n>.json snapshot, so the performance trajectory accumulates
# across working sessions.  Tune the sample count with BENCHTIME=50x etc.
bench:
	$(GO) test -run '^$$' -bench '^(BenchmarkTable1|BenchmarkAdversarySweep|BenchmarkExtraction|BenchmarkCodec|BenchmarkServerSweep|BenchmarkServerWire|BenchmarkSchedulerDuplicates|BenchmarkStoreMultiGet)$$' -benchtime $(BENCHTIME) . > bench.out || { cat bench.out; rm -f bench.out; exit 1; }
	@cat bench.out
	@$(GO) run ./cmd/benchjson -dir . < bench.out; status=$$?; rm -f bench.out; exit $$status

# bench-compare diffs the two most recent BENCH_<n>.json snapshots,
# printing per-benchmark ns/op deltas (plus B/op and allocs/op movements)
# and flagging regressions (non-zero exit with FAIL_ON_REGRESS=1).
# REGRESS_THRESHOLD widens the default 10% growth cutoff and MIN_NS sets a
# noise floor below which benchmarks are never flagged — the CI gate uses
# both, because it compares snapshots recorded in different sessions.
bench-compare:
	@prev=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -2 | head -1); \
	latest=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1); \
	if [ -z "$$prev" ] || [ "$$prev" = "$$latest" ]; then echo "bench-compare: need at least two BENCH_<n>.json snapshots"; exit 1; fi; \
	echo "comparing $$prev -> $$latest"; \
	$(GO) run ./cmd/benchjson -compare $${FAIL_ON_REGRESS:+-fail-on-regress} \
		$${REGRESS_THRESHOLD:+-regress-threshold $$REGRESS_THRESHOLD} \
		$${MIN_NS:+-min-ns $$MIN_NS} \
		"$$prev" "$$latest"
