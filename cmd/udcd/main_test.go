package main

import (
	"bufio"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestParseOptions(t *testing.T) {
	o, err := parseOptions([]string{"-addr", "127.0.0.1:0", "-store", "", "-workers", "3", "-mem-entries", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:0" || o.storeDir != "" || o.workers != 3 || o.memEntries != -1 {
		t.Fatalf("parsed options: %+v", o)
	}
	if _, err := parseOptions([]string{"-no-such-flag"}); err == nil {
		t.Fatalf("unknown flag accepted")
	}
	o, err = parseOptions([]string{"-pprof", "-slow-log", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !o.pprof || o.slowLog != 250*time.Millisecond {
		t.Fatalf("parsed observability options: %+v", o)
	}
	if o, _ := parseOptions(nil); o.pprof || o.slowLog != 30*time.Second {
		t.Fatalf("observability defaults: %+v", o)
	}
}

// TestPprofFlag pins the opt-in: profiling handlers exist exactly when -pprof
// is set.
func TestPprofFlag(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		srv, err := buildServer(options{storeDir: "", pprof: enabled})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		ts.Close()
		srv.Close()
		want := http.StatusNotFound
		if enabled {
			want = http.StatusOK
		}
		if resp.StatusCode != want {
			t.Fatalf("pprof=%v: /debug/pprof/cmdline HTTP %d, want %d", enabled, resp.StatusCode, want)
		}
	}
}

func TestBuildServerWiring(t *testing.T) {
	dir := t.TempDir()
	srv, err := buildServer(options{storeDir: dir, workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Store().Dir() != dir {
		t.Fatalf("store dir = %q, want %q", srv.Store().Dir(), dir)
	}
}

// TestServeOnRandomPort boots the daemon exactly as the CI smoke job does:
// random port, scrape the announced URL, hit /healthz and sweep twice to see
// a cache hit, then shut down via SIGTERM.
func TestServeOnRandomPort(t *testing.T) {
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-store", t.TempDir()}, pw)
		pw.Close()
	}()

	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no startup line; run error: %v", <-errc)
	}
	line := sc.Text()
	m := regexp.MustCompile(`http://[0-9.:]+`).FindString(line)
	if m == "" {
		t.Fatalf("startup line %q carries no URL", line)
	}
	go io.Copy(io.Discard, pr) // drain the shutdown message

	resp, err := http.Get(m + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}

	sweep := m + "/v1/sweep?scenario=prop2.3-nudc&seeds=4"
	var bodies [2]string
	var caches [2]string
	for i := range bodies {
		resp, err := http.Get(sweep)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("sweep %d: HTTP %d, %v", i, resp.StatusCode, err)
		}
		bodies[i], caches[i] = string(raw), resp.Header.Get("X-Cache")
	}
	if caches[0] != "miss" || caches[1] != "hit" {
		t.Fatalf("cache headers = %v, want [miss hit]", caches)
	}
	if bodies[0] != bodies[1] {
		t.Fatalf("cached body differs from computed body")
	}

	// A grown window is a partial hit (4 cached seeds + 4 computed)…
	resp, err = http.Get(m + "/v1/sweep?scenario=prop2.3-nudc&seeds=8")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "partial" {
		t.Fatalf("grown window X-Cache = %q, want partial", got)
	}

	// …and -stats against the running daemon reports the classification.
	var stats strings.Builder
	if err := run([]string{"-stats", "-addr", strings.TrimPrefix(m, "http://")}, &stats); err != nil {
		t.Fatalf("-stats: %v", err)
	}
	out := stats.String()
	for _, want := range []string{
		"fullHits=1", "partialHits=1", "misses=1",
		"seeds: requested=12 cached=4 computed=8",
		// The /metrics-derived enrichment: uptime, per-route latency
		// quantiles over the three sweeps, and the grade ratios.
		"uptime: ",
		"latency /v1/sweep: count=3 p50=",
		"cache: hit=33.3% partial=33.3% miss=33.3%",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-stats output lacks %q:\n%s", want, out)
		}
	}

	// The daemon also serves the raw exposition, with the scheduler mirror
	// agreeing with the seed accounting asserted above.
	resp, err = http.Get(m + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d, %v", resp.StatusCode, err)
	}
	if !strings.Contains(string(page), "udc_scheduler_seeds_computed_total 8\n") {
		t.Fatalf("/metrics lacks udc_scheduler_seeds_computed_total 8:\n%s", page)
	}

	proc, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not shut down on SIGINT")
	}
}
