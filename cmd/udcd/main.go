// Command udcd is the sweep/extraction service daemon: it serves the
// catalogued scenarios and knowledge-extraction pipelines over an HTTP JSON
// API backed by the content-addressed run-corpus store.  Identical requests
// are answered from the cache (or coalesced while in flight), distinct
// concurrent sweeps batch onto one shared worker-fleet pass, and every
// response is byte-identical to a direct serial computation.
//
// Usage:
//
//	udcd -addr 127.0.0.1:8080 -store .udcd-store
//	udcd -addr 127.0.0.1:0                 # random port, printed on startup
//	udcd -stats -addr 127.0.0.1:8080       # print a running daemon's counters
//	udcsim -remote http://127.0.0.1:8080 -scenario prop3.1-strong-udc -sweep 64
//	fdextract -remote http://127.0.0.1:8080 -scenario kx-perfect
//
// Endpoints: /healthz (liveness), /readyz (readiness; 503 while draining),
// /v1/sweep, /v1/extract, /v1/scenarios, /v1/adversaries, /v1/stats,
// /v1/corpus (shard occupancy + per-source seed traffic), /v1/fleet (fleet
// membership + peer health), /v1/claim (fleet-internal), /metrics
// (Prometheus text exposition), /debug/traces and /debug/traces/<id> (the
// request trace log), and — with -pprof — /debug/pprof/*.
//
// Fleet mode (-fleet-peers with -fleet-self) shards the 256-way seed-record
// prefix space across peers by rendezvous hashing: seeds owned by a remote
// peer are claimed there over the binary wire, failures fall back to local
// recompute (responses stay byte-identical to a single cold daemon), and a
// consecutive-failure detector with half-open probes keeps suspected peers
// out of the request path.
//
// On SIGINT/SIGTERM the daemon drains before exiting: /readyz flips to 503,
// new sweep/extract/claim work is shed with 503 + Retry-After, and in-flight
// requests (streams included) are given -drain-timeout to finish.
//
// The sweep and extract routes content-negotiate: JSON (the default), the
// store's binary codec container (Accept: application/x-udc-bin or
// ?format=bin, served byte-for-byte with no re-encode), streamed NDJSON
// (application/x-ndjson, one outcome per line plus a trailer record), and —
// for sweeps — length-prefixed binary frames (application/x-udc-bin-stream).
// -rate-limit, -max-queue and -request-timeout add admission control: shed
// requests answer 429 with a Retry-After hint while everything admitted is
// served to completion.
//
// Every sweep/extract response carries an X-Trace-Id header (a client's W3C
// `traceparent` header is honoured); the finished trace — stage breakdown,
// seed accounting, span links to coalesced owners — is retrievable from
// /debug/traces/<id>.  Slow requests log as structured records keyed by
// trace ID; -log-format picks text or JSON.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "udcd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr        string
	storeDir    string
	workers     int
	batchWindow time.Duration
	memEntries  int
	memBytes    int64
	stats       bool
	pprof       bool
	slowLog     time.Duration
	logFormat   string
	traceLog    int
	rateLimit   float64
	rateBurst   int
	maxQueue    int
	reqTimeout  time.Duration

	drainTimeout time.Duration
	fleetPeers   string
	fleetSelf    string
	fleetHedge   time.Duration
	fleetSuspect int
	fleetProbe   time.Duration
}

func parseOptions(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("udcd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (port 0 picks a free port, printed on startup)")
	fs.StringVar(&o.storeDir, "store", ".udcd-store", "run-corpus store directory (empty = memory-only, nothing persisted)")
	fs.IntVar(&o.workers, "workers", 0, "worker-fleet size shared by all computations (0 = GOMAXPROCS)")
	fs.DurationVar(&o.batchWindow, "batch-window", 0, "how long to collect concurrent sweep requests into one fleet pass (0 = 2ms)")
	fs.IntVar(&o.memEntries, "mem-entries", 0, "in-memory cache entry bound (0 = 256, negative disables the memory layer)")
	fs.Int64Var(&o.memBytes, "mem-bytes", 0, "in-memory cache byte bound (0 = 64 MiB)")
	fs.BoolVar(&o.stats, "stats", false, "query the daemon running at -addr for its counters (full/partial/miss hits, seed traffic, store layers) and exit")
	fs.BoolVar(&o.pprof, "pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
	fs.DurationVar(&o.slowLog, "slow-log", 30*time.Second, "log requests slower than this with their stage trace, and always retain their traces in the trace log (0 disables)")
	fs.StringVar(&o.logFormat, "log-format", "text", "structured log encoding on stderr: text or json")
	fs.IntVar(&o.traceLog, "trace-log", 0, "trace log capacity: retains this many tail-sampled traces plus as many slow/errored ones (0 = 512)")
	fs.Float64Var(&o.rateLimit, "rate-limit", 0, "per-client sweep/extract requests per second; shed with 429 + Retry-After past the burst (0 disables)")
	fs.IntVar(&o.rateBurst, "rate-burst", 0, "per-client burst allowance for -rate-limit (0 = twice the rate)")
	fs.IntVar(&o.maxQueue, "max-queue", 0, "shed compute requests with 429 when this many fleet jobs are already pending; cache hits always served (0 disables)")
	fs.DurationVar(&o.reqTimeout, "request-timeout", 0, "server-side deadline per sweep/extract request; exceeding it answers 503 and releases claimed seeds (0 disables)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 10*time.Second, "how long to wait for in-flight requests after SIGINT/SIGTERM before forcing shutdown")
	fs.StringVar(&o.fleetPeers, "fleet-peers", "", "comma-separated fleet membership (base URLs, self included); empty = single-node")
	fs.StringVar(&o.fleetSelf, "fleet-self", "", "this daemon's own base URL, exactly as it appears in -fleet-peers")
	fs.DurationVar(&o.fleetHedge, "fleet-hedge", 0, "hedge outstanding remote claims with a local recompute after this long (0 = 500ms, negative disables)")
	fs.IntVar(&o.fleetSuspect, "fleet-suspect-after", 0, "consecutive claim failures before a peer is suspected (0 = 3)")
	fs.DurationVar(&o.fleetProbe, "fleet-probe-interval", 0, "spacing of half-open probes to suspected peers (0 = 3s)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// printStats renders /v1/stats of a running daemon: request classification
// (full hits / partial hits / misses), seed-granular traffic, fleet activity
// and the store's layer counters.
func printStats(w io.Writer, baseURL string) error {
	client := &server.Client{BaseURL: baseURL}
	stats, err := client.Stats()
	if err != nil {
		return err
	}
	sch, st := stats.Scheduler, stats.Store
	fmt.Fprintf(w, "requests=%d fullHits=%d partialHits=%d misses=%d coalesced=%d errors=%d\n",
		sch.Requests, sch.FullHits, sch.PartialHits, sch.Misses, sch.Coalesced, sch.Errors)
	fmt.Fprintf(w, "seeds: requested=%d cached=%d computed=%d coalesced=%d remote=%d\n",
		sch.SeedsRequested, sch.SeedsCached, sch.SeedsComputed, sch.SeedsCoalesced, sch.SeedsRemote)
	fmt.Fprintf(w, "fleet: jobs=%d batches=%d batchedTasks=%d putErrors=%d\n",
		sch.Computed, sch.Batches, sch.BatchedTasks, sch.PutErrors)
	fmt.Fprintf(w, "store: memHits=%d diskHits=%d misses=%d puts=%d corrupt=%d evictions=%d memEntries=%d memBytes=%d\n",
		st.MemHits, st.DiskHits, st.Misses, st.Puts, st.CorruptEntries, st.Evictions, st.MemEntries, st.MemBytes)
	fmt.Fprintf(w, "versions: engine=%d codec=%d\n", stats.EngineVersion, stats.CodecVersion)
	printMetricsSummary(w, client, sch)
	printTraceSummary(w, client)
	printCorpusSummary(w, client)
	return nil
}

// printTraceSummary enriches -stats with the slowest recent traces from
// /debug/traces.  Older daemons do not serve the endpoint; the block is just
// omitted then, like the metrics summary.
func printTraceSummary(w io.Writer, client *server.Client) {
	traces, err := client.Traces(256)
	if err != nil || len(traces) == 0 {
		return
	}
	sort.Slice(traces, func(i, j int) bool { return traces[i].TotalMillis > traces[j].TotalMillis })
	n := len(traces)
	if n > 5 {
		n = 5
	}
	fmt.Fprintf(w, "slowest traces (of %d logged):\n", len(traces))
	for _, t := range traces[:n] {
		outcome := t.Cache
		if t.Error != "" {
			outcome = "error"
		}
		fmt.Fprintf(w, "  %s %s %.1fms cache=%s\n", t.ID, t.Route, t.TotalMillis, outcome)
	}
}

// printCorpusSummary enriches -stats with the corpus census from /v1/corpus:
// totals plus the highest-occupancy shards.  Omitted when the endpoint is
// absent or the corpus is memory-only.
func printCorpusSummary(w io.Writer, client *server.Client) {
	corpus, err := client.Corpus()
	if err != nil {
		return
	}
	if corpus.Disk.Entries > 0 {
		fmt.Fprintf(w, "corpus: entries=%d bytes=%d shards=%d\n",
			corpus.Disk.Entries, corpus.Disk.Bytes, len(corpus.Disk.Shards))
		shards := append([]store.ShardInfo(nil), corpus.Disk.Shards...)
		sort.Slice(shards, func(i, j int) bool { return shards[i].Entries > shards[j].Entries })
		n := len(shards)
		if n > 3 {
			n = 3
		}
		for _, sh := range shards[:n] {
			fmt.Fprintf(w, "  shard %s: entries=%d bytes=%d\n", sh.Shard, sh.Entries, sh.Bytes)
		}
	}
	for _, src := range corpus.Sources {
		fmt.Fprintf(w, "source %s adversary=%q: cached=%d computed=%d coalesced=%d seeds=[%d,%d]\n",
			src.Source, src.Adversary, src.SeedsCached, src.SeedsComputed, src.SeedsCoalesced, src.MinSeed, src.MaxSeed)
	}
}

// printMetricsSummary enriches -stats with the /metrics view of the daemon:
// uptime, per-route latency quantiles (aggregated across cache grades) and
// cache-grade ratios.  A scrape failure just omits the block — the core
// counters above never depend on it.
func printMetricsSummary(w io.Writer, client *server.Client, sch server.SchedulerStats) {
	samples, err := client.Metrics()
	if err != nil {
		return
	}
	if start, ok := obs.Value(samples, "udc_start_time_seconds"); ok {
		uptime := time.Since(time.Unix(0, int64(start*1e9))).Truncate(time.Second)
		fmt.Fprintf(w, "uptime: %s\n", uptime)
	}
	for _, route := range []string{"/v1/sweep", "/v1/extract"} {
		buckets := obs.Buckets(samples, "udc_http_request_duration_seconds", "route", route)
		if len(buckets) == 0 {
			continue
		}
		count := buckets[len(buckets)-1].CumulativeCount
		if count == 0 {
			continue
		}
		fmt.Fprintf(w, "latency %s: count=%d p50=%s p99=%s\n", route, count,
			fmtSeconds(obs.Quantile(0.5, buckets)), fmtSeconds(obs.Quantile(0.99, buckets)))
	}
	if served := sch.FullHits + sch.PartialHits + sch.Misses; served > 0 {
		pct := func(n uint64) float64 { return 100 * float64(n) / float64(served) }
		fmt.Fprintf(w, "cache: hit=%.1f%% partial=%.1f%% miss=%.1f%%\n",
			pct(sch.FullHits), pct(sch.PartialHits), pct(sch.Misses))
	}
}

// fmtSeconds renders a latency quantile (in seconds) as a duration; bucket
// interpolation means the value is an estimate, so millisecond precision is
// plenty.
func fmtSeconds(s float64) string {
	if math.IsNaN(s) {
		return "n/a"
	}
	return time.Duration(s * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// buildLogger assembles the daemon's structured logger on stderr in the
// requested encoding.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (text or json)", format)
}

// buildServer opens the store and assembles the daemon; split out so tests
// can exercise the full wiring without binding a socket.
func buildServer(o options) (*server.Server, error) {
	st, err := store.Open(o.storeDir, store.Options{MaxMemEntries: o.memEntries, MaxMemBytes: o.memBytes})
	if err != nil {
		return nil, err
	}
	logger, err := buildLogger(o.logFormat)
	if err != nil {
		return nil, err
	}
	var fc *fleet.Config
	if o.fleetPeers != "" {
		var peers []string
		for _, p := range strings.Split(o.fleetPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		fc = &fleet.Config{
			Self:          o.fleetSelf,
			Peers:         peers,
			HedgeDelay:    o.fleetHedge,
			SuspectAfter:  o.fleetSuspect,
			ProbeInterval: o.fleetProbe,
		}
	}
	return server.New(server.Config{
		Store:          st,
		Workers:        o.workers,
		BatchWindow:    o.batchWindow,
		Pprof:          o.pprof,
		SlowRequest:    o.slowLog,
		Logger:         logger,
		TraceCapacity:  o.traceLog,
		RateLimit:      o.rateLimit,
		RateBurst:      o.rateBurst,
		MaxQueue:       o.maxQueue,
		RequestTimeout: o.reqTimeout,
		Fleet:          fc,
	})
}

func run(args []string, w io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.stats {
		return printStats(w, "http://"+o.addr)
	}
	srv, err := buildServer(o)
	if err != nil {
		return err
	}
	defer srv.Close()

	// Listen before announcing, so -addr :0 can print the resolved port and
	// scripts can scrape it from the first output line.
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	storeDesc := o.storeDir
	if storeDesc == "" {
		storeDesc = "(memory-only)"
	}
	fmt.Fprintf(w, "udcd listening on http://%s store=%s workers=%d\n", ln.Addr(), storeDesc, o.workers)

	httpServer := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpServer.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		// Drain, then shut down: readiness flips to 503 and new corpus work
		// is shed immediately, while everything already admitted — streams
		// included — gets -drain-timeout to finish.  Only then is the HTTP
		// server torn down, so a clean drain never cuts a response short.
		fmt.Fprintf(w, "udcd: received %v, draining\n", sig)
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		if derr := srv.Drain(ctx); derr != nil {
			fmt.Fprintf(w, "udcd: drain timed out with %d requests in flight\n", srv.ActiveRequests())
		} else {
			fmt.Fprintf(w, "udcd: drained cleanly\n")
		}
		return httpServer.Shutdown(ctx)
	}
}
