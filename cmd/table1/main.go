// Command table1 regenerates Table 1 of the paper empirically: for every
// (channel regime, failure bound, problem) cell it runs the detector/protocol
// combination the paper lists as sufficient (expecting success on every seed)
// and, for cells the paper proves optimal, the next-weaker combination
// (expecting at least one failing seed).
//
// All cells' (scenario, seed) pairs are swept over a parallel worker pool
// whose aggregates are identical to a serial sweep for any worker count.
//
// Usage:
//
//	table1 [-n 6] [-seeds 20] [-steps 450] [-base-seed 1000] [-workers 0] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/table1"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	params := table1.DefaultParams()
	verbose := false
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	fs.IntVar(&params.N, "n", params.N, "number of processes")
	fs.IntVar(&params.Seeds, "seeds", params.Seeds, "seeds per scenario")
	fs.IntVar(&params.MaxSteps, "steps", params.MaxSteps, "simulation horizon per run")
	fs.Int64Var(&params.BaseSeed, "base-seed", params.BaseSeed, "first seed of the sweep")
	fs.IntVar(&params.Workers, "workers", params.Workers, "parallel sweep workers (0 = GOMAXPROCS)")
	fs.BoolVar(&verbose, "v", false, "print per-scenario sweep summaries")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if params.N < 4 {
		return fmt.Errorf("need at least 4 processes to separate the three failure regimes, got %d", params.N)
	}

	results, err := table1.Evaluate(params)
	if err != nil {
		return err
	}

	fmt.Printf("Table 1 (n=%d, %d seeds per scenario, horizon %d steps)\n\n", params.N, params.Seeds, params.MaxSteps)
	fmt.Print(table1.Render(results))

	if verbose {
		fmt.Println("\nper-scenario details:")
		for _, res := range results {
			fmt.Println(" ", res.MinimalResult.String())
			if res.WeakerResult != nil {
				fmt.Println(" ", res.WeakerResult.String())
			}
		}
	}

	mismatches := 0
	for _, res := range results {
		if !res.MinimalOK() {
			mismatches++
			fmt.Printf("MISMATCH: %s/%s/%s: sufficient detector class failed\n",
				res.Cell.Channel, res.Cell.Regime, res.Cell.Problem)
		}
		if !res.WeakerFails() {
			mismatches++
			fmt.Printf("MISMATCH: %s/%s/%s: weaker detector class did not fail\n",
				res.Cell.Channel, res.Cell.Regime, res.Cell.Problem)
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d cells deviate from the paper's table", mismatches)
	}
	fmt.Println("\nall cells match the paper's characterisation")
	return nil
}
