package main

import "testing"

func TestRunSmallSweep(t *testing.T) {
	if err := run([]string{"-seeds", "4", "-steps", "400", "-n", "6"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunVerbose(t *testing.T) {
	if err := run([]string{"-seeds", "2", "-steps", "400", "-v"}); err != nil {
		t.Fatalf("run -v: %v", err)
	}
}

func TestRunRejectsTinySystems(t *testing.T) {
	if err := run([]string{"-n", "3"}); err == nil {
		t.Fatalf("expected an error for n < 4")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatalf("expected a flag parse error")
	}
}
