package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkTable1/reliable/UDC/any-8         	     100	    123456 ns/op	         0.950 ok-rate	       321.0 msgs/run
BenchmarkAdversarySweep/adv-burst-loss-strong-udc-8 	      50	   2345678 ns/op	         1.000 ok-rate	       654.0 msgs/run	        12.50 latency-steps
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(snap.Benchmarks))
	}
	if snap.Context["goos"] != "linux" || snap.Context["cpu"] != "Test CPU @ 2.00GHz" {
		t.Errorf("context not captured: %v", snap.Context)
	}
	first := snap.Benchmarks[0]
	if first.Name != "BenchmarkTable1/reliable/UDC/any-8" || first.Iterations != 100 {
		t.Errorf("first benchmark mis-parsed: %+v", first)
	}
	if first.Metrics["ns/op"] != 123456 || first.Metrics["ok-rate"] != 0.95 {
		t.Errorf("first benchmark metrics mis-parsed: %v", first.Metrics)
	}
	second := snap.Benchmarks[1]
	if second.Metrics["latency-steps"] != 12.5 {
		t.Errorf("custom metric mis-parsed: %v", second.Metrics)
	}
}

func TestParseRejectsGarbageMetrics(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX 10 abc ns/op\n")); err == nil {
		t.Errorf("non-numeric metric value should fail")
	}
}

func TestRunNumbersSnapshots(t *testing.T) {
	dir := t.TempDir()
	for want := 1; want <= 3; want++ {
		path, err := run(strings.NewReader(sampleOutput), dir, "")
		if err != nil {
			t.Fatalf("run %d: %v", want, err)
		}
		if filepath.Base(path) != ("BENCH_" + string(rune('0'+want)) + ".json") {
			t.Fatalf("run %d wrote %s", want, path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("unmarshal %s: %v", path, err)
		}
		if snap.RecordedAt == "" || len(snap.Benchmarks) != 2 {
			t.Errorf("snapshot %s incomplete: %+v", path, snap)
		}
	}
}

func TestRunRequiresResults(t *testing.T) {
	if _, err := run(strings.NewReader("PASS\nok repro 0.1s\n"), t.TempDir(), ""); err == nil {
		t.Errorf("empty bench output should fail")
	}
}
