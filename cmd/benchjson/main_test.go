package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU @ 2.00GHz
BenchmarkTable1/reliable/UDC/any-8         	     100	    123456 ns/op	         0.950 ok-rate	       321.0 msgs/run
BenchmarkAdversarySweep/adv-burst-loss-strong-udc-8 	      50	   2345678 ns/op	         1.000 ok-rate	       654.0 msgs/run	        12.50 latency-steps
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(snap.Benchmarks))
	}
	if snap.Context["goos"] != "linux" || snap.Context["cpu"] != "Test CPU @ 2.00GHz" {
		t.Errorf("context not captured: %v", snap.Context)
	}
	first := snap.Benchmarks[0]
	if first.Name != "BenchmarkTable1/reliable/UDC/any-8" || first.Iterations != 100 {
		t.Errorf("first benchmark mis-parsed: %+v", first)
	}
	if first.Metrics["ns/op"] != 123456 || first.Metrics["ok-rate"] != 0.95 {
		t.Errorf("first benchmark metrics mis-parsed: %v", first.Metrics)
	}
	second := snap.Benchmarks[1]
	if second.Metrics["latency-steps"] != 12.5 {
		t.Errorf("custom metric mis-parsed: %v", second.Metrics)
	}
}

func TestParseRejectsGarbageMetrics(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX 10 abc ns/op\n")); err == nil {
		t.Errorf("non-numeric metric value should fail")
	}
}

func TestRunNumbersSnapshots(t *testing.T) {
	dir := t.TempDir()
	for want := 1; want <= 3; want++ {
		path, err := run(strings.NewReader(sampleOutput), dir, "")
		if err != nil {
			t.Fatalf("run %d: %v", want, err)
		}
		if filepath.Base(path) != ("BENCH_" + string(rune('0'+want)) + ".json") {
			t.Fatalf("run %d wrote %s", want, path)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("unmarshal %s: %v", path, err)
		}
		if snap.RecordedAt == "" || len(snap.Benchmarks) != 2 {
			t.Errorf("snapshot %s incomplete: %+v", path, snap)
		}
	}
}

func TestRunRequiresResults(t *testing.T) {
	if _, err := run(strings.NewReader("PASS\nok repro 0.1s\n"), t.TempDir(), ""); err == nil {
		t.Errorf("empty bench output should fail")
	}
}

// writeSnapshot writes a snapshot file with the given name → ns/op pairs.
func writeSnapshot(t *testing.T, path string, ns map[string]float64) {
	t.Helper()
	snap := Snapshot{RecordedAt: "2026-01-01T00:00:00Z"}
	for name, v := range ns {
		snap.Benchmarks = append(snap.Benchmarks, Benchmark{Name: name, Iterations: 1, Metrics: map[string]float64{"ns/op": v}})
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeSnapshot(t, oldPath, map[string]float64{
		"BenchmarkStable-8":    1000,
		"BenchmarkImproved-8":  2000,
		"BenchmarkRegressed-8": 1000,
		"BenchmarkRetired-8":   500,
	})
	writeSnapshot(t, newPath, map[string]float64{
		"BenchmarkStable-8":    1040, // +4%: within threshold
		"BenchmarkImproved-8":  900,  // -55%
		"BenchmarkRegressed-8": 1300, // +30%: regression
		"BenchmarkAdded-8":     700,  // new: never a regression
	})

	var buf strings.Builder
	regressions, err := compare(&buf, oldPath, newPath, regressThreshold, 0)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if len(regressions) != 1 || regressions[0] != "BenchmarkRegressed-8" {
		t.Fatalf("regressions = %v, want exactly BenchmarkRegressed-8", regressions)
	}
	out := buf.String()
	for _, want := range []string{"BenchmarkRegressed-8", "REGRESSION", "+30.0%", "new", "gone"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output lacks %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSION") != 1 {
		t.Errorf("exactly one regression marker expected:\n%s", out)
	}
	if !strings.Contains(out, "compared 3 benchmarks: 1 new, 1 gone, 1 regressions") {
		t.Errorf("compare output lacks the summary line:\n%s", out)
	}
}

// writeMetricsSnapshot writes a snapshot with full metric maps per benchmark.
func writeMetricsSnapshot(t *testing.T, path string, metrics map[string]map[string]float64) {
	t.Helper()
	snap := Snapshot{RecordedAt: "2026-01-01T00:00:00Z"}
	for name, m := range metrics {
		snap.Benchmarks = append(snap.Benchmarks, Benchmark{Name: name, Iterations: 1, Metrics: m})
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCompareReportsAllocationDeltas(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeMetricsSnapshot(t, oldPath, map[string]map[string]float64{
		"BenchmarkPooled-8": {"ns/op": 1000, "B/op": 4096, "allocs/op": 200},
		"BenchmarkTimed-8":  {"ns/op": 500},
	})
	writeMetricsSnapshot(t, newPath, map[string]map[string]float64{
		"BenchmarkPooled-8": {"ns/op": 900, "B/op": 1024, "allocs/op": 2},
		"BenchmarkTimed-8":  {"ns/op": 480, "B/op": 64, "allocs/op": 1},
	})

	var buf strings.Builder
	if _, err := compare(&buf, oldPath, newPath, regressThreshold, 0); err != nil {
		t.Fatalf("compare: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"B/op 4096→1024 (-75.0%)",
		"allocs/op 200→2 (-99.0%)",
		// A benchmark that only just started reporting allocations shows the
		// bare new values instead of a delta.
		"B/op 64",
		"allocs/op 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output lacks %q:\n%s", want, out)
		}
	}
}

func TestCompareThresholdAndNoiseFloor(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeSnapshot(t, oldPath, map[string]float64{
		"BenchmarkMicro-8": 5000,    // 5µs: below the floor, grows 60%
		"BenchmarkDrift-8": 2000000, // grows 20%: within a widened threshold
		"BenchmarkSlow-8":  2000000, // grows 40%: regressed even when widened
	})
	writeSnapshot(t, newPath, map[string]float64{
		"BenchmarkMicro-8": 8000,
		"BenchmarkDrift-8": 2400000,
		"BenchmarkSlow-8":  2800000,
	})

	var buf strings.Builder
	regressions, err := compare(&buf, oldPath, newPath, 0.25, 1e6)
	if err != nil {
		t.Fatalf("compare: %v", err)
	}
	if len(regressions) != 1 || regressions[0] != "BenchmarkSlow-8" {
		t.Fatalf("regressions = %v, want exactly BenchmarkSlow-8 (micro under floor, drift under threshold)", regressions)
	}
}

func TestCompareRejectsMissingFiles(t *testing.T) {
	var buf strings.Builder
	if _, err := compare(&buf, filepath.Join(t.TempDir(), "nope.json"), filepath.Join(t.TempDir(), "also-nope.json"), regressThreshold, 0); err == nil {
		t.Errorf("missing snapshot files should fail")
	}
}
