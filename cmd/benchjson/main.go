// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON snapshot and writes it to the next free BENCH_<n>.json in the
// target directory, so repeated `make bench` invocations accumulate a
// machine-readable performance trajectory.  With -compare it instead diffs
// two snapshots, printing per-benchmark ns/op deltas (plus B/op and
// allocs/op movements for benchmarks that report allocations) and flagging
// ns/op regressions.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTable1|BenchmarkAdversarySweep' . | benchjson -dir .
//	go test -bench . ./... | benchjson -o snapshot.json
//	benchjson -compare BENCH_3.json BENCH_4.json
//	benchjson -compare -fail-on-regress BENCH_3.json BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full sub-benchmark path, including the -cpu suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// Metrics maps unit to value: ns/op plus any custom b.ReportMetric
	// units (ok-rate, msgs/run, latency-steps, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file layout of BENCH_<n>.json.
type Snapshot struct {
	// RecordedAt is the wall-clock time the snapshot was written.
	RecordedAt string `json:"recordedAt"`
	// Context holds the goos/goarch/pkg/cpu header lines of the bench run.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output and returns the snapshot (without a
// timestamp).  Lines that are neither benchmark results nor recognised
// header lines are ignored, so the parser tolerates -v noise and custom
// prints.
func parse(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case strings.HasSuffix(fields[0], ":") && len(fields) >= 2:
			key := strings.TrimSuffix(fields[0], ":")
			if key == "goos" || key == "goarch" || key == "pkg" || key == "cpu" {
				snap.Context[key] = strings.Join(fields[1:], " ")
			}
		case strings.HasPrefix(fields[0], "Benchmark") && len(fields) >= 2:
			iterations, err := strconv.Atoi(fields[1])
			if err != nil {
				continue // not a result line (e.g. a bare "BenchmarkFoo" announcement)
			}
			b := Benchmark{Name: fields[0], Iterations: iterations, Metrics: map[string]float64{}}
			for i := 2; i+1 < len(fields); i += 2 {
				value, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("benchjson: %s: bad metric value %q", b.Name, fields[i])
				}
				b.Metrics[fields[i+1]] = value
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}
	return snap, nil
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n >= 1 that does
// not exist yet.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 100000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("benchjson: no free BENCH_<n>.json slot in %s", dir)
}

func run(in io.Reader, dir, out string) (string, error) {
	snap, err := parse(in)
	if err != nil {
		return "", err
	}
	if len(snap.Benchmarks) == 0 {
		return "", fmt.Errorf("benchjson: no benchmark result lines found on stdin")
	}
	snap.RecordedAt = time.Now().UTC().Format(time.RFC3339)
	path := out
	if path == "" {
		if path, err = nextBenchPath(dir); err != nil {
			return "", err
		}
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// regressThreshold is the default ns/op growth fraction above which a
// benchmark counts as regressed in -compare mode.  Comparisons across
// snapshots recorded in the same session can hold this tight default; the
// CI gate compares snapshots recorded in different working sessions (often
// on different hosts), where unchanged code drifts ±20%, and therefore
// passes a wider -regress-threshold plus a -min-ns noise floor.
const regressThreshold = 0.10

// loadSnapshot reads one BENCH_<n>.json file.
func loadSnapshot(path string) (Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return snap, nil
}

// allocDelta renders the old→new movement of one allocation metric (B/op or
// allocs/op): empty when neither snapshot measured it, the bare new value for
// a benchmark that only just started reporting allocations.
func allocDelta(unit string, oldM, newM map[string]float64) string {
	nv, nok := newM[unit]
	if !nok {
		return ""
	}
	ov, ook := oldM[unit]
	if !ook {
		return fmt.Sprintf("  %s %.0f", unit, nv)
	}
	if ov == 0 {
		return fmt.Sprintf("  %s %.0f→%.0f", unit, ov, nv)
	}
	return fmt.Sprintf("  %s %.0f→%.0f (%+.1f%%)", unit, ov, nv, (nv-ov)/ov*100)
}

// compare prints per-benchmark deltas between two snapshots — ns/op in the
// main columns, B/op and allocs/op movements appended for benchmarks that
// report allocations — and returns the names of benchmarks whose ns/op
// regressed by more than threshold.  Benchmarks whose old ns/op is below
// minNs are reported but never flagged: sub-floor timings are dominated by
// scheduler and cache noise at bench sample counts.  Benchmarks present in
// only one snapshot are listed but never count as regressions — additions
// and retirements are normal between PRs.
func compare(w io.Writer, oldPath, newPath string, threshold, minNs float64) ([]string, error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return nil, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return nil, err
	}
	oldMetrics := make(map[string]map[string]float64, len(oldSnap.Benchmarks))
	for _, b := range oldSnap.Benchmarks {
		if _, ok := b.Metrics["ns/op"]; ok {
			oldMetrics[b.Name] = b.Metrics
		}
	}

	fmt.Fprintf(w, "%-72s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressions []string
	var added, retired, compared int
	seen := make(map[string]bool, len(newSnap.Benchmarks))
	for _, b := range newSnap.Benchmarks {
		ns, ok := b.Metrics["ns/op"]
		if !ok {
			continue
		}
		seen[b.Name] = true
		allocs := allocDelta("B/op", oldMetrics[b.Name], b.Metrics) + allocDelta("allocs/op", oldMetrics[b.Name], b.Metrics)
		oldM, ok := oldMetrics[b.Name]
		if !ok {
			added++
			fmt.Fprintf(w, "%-72s %14s %14.0f %9s%s\n", b.Name, "-", ns, "new", allocs)
			continue
		}
		compared++
		old := oldM["ns/op"]
		delta := (ns - old) / old
		mark := ""
		if delta > threshold && old >= minNs {
			mark = "  << REGRESSION"
			regressions = append(regressions, b.Name)
		}
		fmt.Fprintf(w, "%-72s %14.0f %14.0f %+8.1f%%%s%s\n", b.Name, old, ns, delta*100, allocs, mark)
	}
	for _, b := range oldSnap.Benchmarks {
		if _, ok := b.Metrics["ns/op"]; ok && !seen[b.Name] {
			retired++
			fmt.Fprintf(w, "%-72s %14.0f %14s %9s\n", b.Name, b.Metrics["ns/op"], "-", "gone")
		}
	}
	fmt.Fprintf(w, "compared %d benchmarks: %d new, %d gone, %d regressions\n",
		compared, added, retired, len(regressions))
	return regressions, nil
}

func main() {
	dir := flag.String("dir", ".", "directory for the auto-numbered BENCH_<n>.json output")
	out := flag.String("o", "", "explicit output path (overrides -dir auto-numbering)")
	comp := flag.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of reading bench output from stdin")
	failOnRegress := flag.Bool("fail-on-regress", false, "with -compare, exit non-zero if any benchmark's ns/op grew more than the regression threshold")
	threshold := flag.Float64("regress-threshold", regressThreshold, "with -compare, the ns/op growth fraction that counts as a regression")
	minNs := flag.Float64("min-ns", 0, "with -compare, ignore regressions in benchmarks whose old ns/op is below this noise floor")
	flag.Parse()

	if *comp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two snapshot paths (old.json new.json)")
			os.Exit(2)
		}
		regressions, err := compare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *minNs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			fmt.Printf("%d benchmark(s) regressed more than %.0f%%\n", len(regressions), *threshold*100)
			if *failOnRegress {
				os.Exit(1)
			}
		}
		return
	}

	path, err := run(os.Stdin, *dir, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("benchmark snapshot written to", path)
}
