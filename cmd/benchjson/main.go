// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON snapshot and writes it to the next free BENCH_<n>.json in the
// target directory, so repeated `make bench` invocations accumulate a
// machine-readable performance trajectory.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTable1|BenchmarkAdversarySweep' . | benchjson -dir .
//	go test -bench . ./... | benchjson -o snapshot.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full sub-benchmark path, including the -cpu suffix.
	Name string `json:"name"`
	// Iterations is the measured b.N.
	Iterations int `json:"iterations"`
	// Metrics maps unit to value: ns/op plus any custom b.ReportMetric
	// units (ok-rate, msgs/run, latency-steps, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Snapshot is the file layout of BENCH_<n>.json.
type Snapshot struct {
	// RecordedAt is the wall-clock time the snapshot was written.
	RecordedAt string `json:"recordedAt"`
	// Context holds the goos/goarch/pkg/cpu header lines of the bench run.
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks are the parsed results in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output and returns the snapshot (without a
// timestamp).  Lines that are neither benchmark results nor recognised
// header lines are ignored, so the parser tolerates -v noise and custom
// prints.
func parse(r io.Reader) (Snapshot, error) {
	snap := Snapshot{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch {
		case strings.HasSuffix(fields[0], ":") && len(fields) >= 2:
			key := strings.TrimSuffix(fields[0], ":")
			if key == "goos" || key == "goarch" || key == "pkg" || key == "cpu" {
				snap.Context[key] = strings.Join(fields[1:], " ")
			}
		case strings.HasPrefix(fields[0], "Benchmark") && len(fields) >= 2:
			iterations, err := strconv.Atoi(fields[1])
			if err != nil {
				continue // not a result line (e.g. a bare "BenchmarkFoo" announcement)
			}
			b := Benchmark{Name: fields[0], Iterations: iterations, Metrics: map[string]float64{}}
			for i := 2; i+1 < len(fields); i += 2 {
				value, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return Snapshot{}, fmt.Errorf("benchjson: %s: bad metric value %q", b.Name, fields[i])
				}
				b.Metrics[fields[i+1]] = value
			}
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, err
	}
	return snap, nil
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest n >= 1 that does
// not exist yet.
func nextBenchPath(dir string) (string, error) {
	for n := 1; n < 100000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("benchjson: no free BENCH_<n>.json slot in %s", dir)
}

func run(in io.Reader, dir, out string) (string, error) {
	snap, err := parse(in)
	if err != nil {
		return "", err
	}
	if len(snap.Benchmarks) == 0 {
		return "", fmt.Errorf("benchjson: no benchmark result lines found on stdin")
	}
	snap.RecordedAt = time.Now().UTC().Format(time.RFC3339)
	path := out
	if path == "" {
		if path, err = nextBenchPath(dir); err != nil {
			return "", err
		}
	}
	raw, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

func main() {
	dir := flag.String("dir", ".", "directory for the auto-numbered BENCH_<n>.json output")
	out := flag.String("o", "", "explicit output path (overrides -dir auto-numbering)")
	flag.Parse()
	path, err := run(os.Stdin, *dir, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("benchmark snapshot written to", path)
}
