// Command fdextract demonstrates Theorems 3.6 and 4.3: it executes a named
// knowledge-extraction pipeline from the registry catalog — simulate a
// UDC-attaining workload over many seeds, index the recorded runs into an
// epistemic system, apply the knowledge-based construction f (perfect
// detector) or f' (t-useful generalized detector), and verify the extracted
// detector's properties against ground truth.  All stages distribute over a
// worker pool with results byte-identical to a serial execution.
//
// Usage:
//
//	fdextract -scenario kx-perfect -workers 4
//	fdextract -scenario kx-tuseful -runs 32
//	fdextract -scenario kx-perfect -adversary cascade
//	fdextract -scenario kx-perfect -o simulated.bin -format bin
//	fdextract -remote http://127.0.0.1:8080 -scenario kx-perfect
//	fdextract -list-scenarios
//
// With -o the transformed runs (the extracted detector's simulated system)
// are written to a file in the binary System container or as a JSON array.
// With -remote the pipeline is served by a udcd daemon — cached and
// coalesced — instead of executing locally; verdicts are identical either
// way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdextract:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	var (
		scenario      string
		adversary     string
		workers       int
		runs          int
		seed          int64
		listScenarios bool
		outPath       string
		format        string
		remote        string
		wire          string
	)
	fs := flag.NewFlagSet("fdextract", flag.ContinueOnError)
	fs.StringVar(&scenario, "scenario", "kx-perfect",
		"extraction pipeline: "+strings.Join(registry.ExtractionNames(), " | "))
	fs.StringVar(&adversary, "adversary", "",
		"fault/network schedule: "+strings.Join(registry.AdversaryNames(), " | ")+" (overrides the scenario's schedule)")
	fs.IntVar(&workers, "workers", 0, "parallel pipeline workers (0 = GOMAXPROCS)")
	fs.IntVar(&runs, "runs", 0, "number of sampled runs (0 = the scenario's standing sample size)")
	fs.Int64Var(&seed, "seed", 0, "first sampling seed (0 = the scenario's standing base seed)")
	fs.BoolVar(&listScenarios, "list-scenarios", false, "list the catalogued extraction pipelines and exit")
	fs.StringVar(&outPath, "o", "", "write the transformed runs (the simulated detector's system) to this file in -format")
	fs.StringVar(&format, "format", store.FormatAuto, "run file format for -o: bin | json | auto (bin)")
	fs.StringVar(&remote, "remote", "", "udcd base URL: serve the pipeline from the daemon instead of executing locally (incompatible with -o and -workers)")
	fs.StringVar(&wire, "wire", "bin", "with -remote: response wire format, bin (the store's codec container, decoded locally) or json")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if listScenarios {
		for _, sc := range registry.Extractions() {
			fmt.Fprintf(w, "%-28s %s\n", sc.Name, sc.Description)
		}
		return nil
	}

	if remote != "" {
		if outPath != "" {
			return fmt.Errorf("-o needs the transformed runs, which only local execution materialises; drop -remote or -o")
		}
		if workers != 0 {
			return fmt.Errorf("-workers sizes the local pool; the daemon's fleet is configured on its side (drop -remote or -workers)")
		}
		if wire != "bin" && wire != "json" {
			return fmt.Errorf("-wire must be bin or json, not %q", wire)
		}
		return runRemote(w, remote, wire, scenario, adversary, runs, seed)
	}

	sc, err := registry.LookupExtraction(scenario)
	if err != nil {
		return err
	}
	ext := sc.Extraction
	if adversary != "" {
		adv, _, err := registry.Adversary(adversary)
		if err != nil {
			return err
		}
		ext.Source.Adversary = adv
	}
	if runs > 0 {
		ext.Runs = runs
	}
	if seed != 0 {
		ext.BaseSeed = seed
	}

	fmt.Fprintf(w, "pipeline %s: sampling %d runs of %s (n=%d, mode=%s)\n",
		ext.Name, ext.Runs, ext.Source.Name, ext.Source.N, ext.Mode)
	result, err := workload.Runner{Workers: workers}.Extract(ext)
	if err != nil {
		return err
	}

	if outPath != "" {
		if err := store.WriteSystemFile(outPath, format, result.Simulated); err != nil {
			return err
		}
		fmt.Fprintf(w, "transformed runs written to %s (format %s)\n", outPath, format)
	}

	fmt.Fprintf(w, "system built: %d runs kept, %d excluded (UDC violations)\n", result.Kept, result.Excluded)
	for _, s := range result.ExcludedSeeds {
		fmt.Fprintf(w, "  excluded seed %d\n", s)
	}
	st := result.Stats
	fmt.Fprintf(w, "epistemic index: %d points, %d classes, %d intervals\n", st.Points, st.Classes, st.Intervals)

	switch ext.Mode {
	case workload.ExtractPerfect:
		fmt.Fprintln(w, "simulated detector (construction P1-P3 of Theorem 3.6):")
	default:
		fmt.Fprintf(w, "simulated generalized detector (construction P3' of Theorem 4.3, t=%d):\n", ext.T)
	}
	fmt.Fprintf(w, "  property violations: %d across %d transformed runs\n",
		result.TotalViolations(), len(result.Simulated))
	if !result.OK() {
		violating := 0
		for _, v := range result.Verdicts {
			if len(v.Violations) > 0 {
				violating++
				fmt.Fprintf(w, "  seed %d: %d violations (first: %v)\n", v.Seed, len(v.Violations), v.Violations[0])
			}
		}
		if sc.Stress {
			fmt.Fprintln(w, "  (stress pipeline: the recorded violations are the expected result)")
			return nil
		}
		return fmt.Errorf("extracted detector violates its properties on %d of %d runs", violating, len(result.Simulated))
	}
	switch ext.Mode {
	case workload.ExtractPerfect:
		fmt.Fprintln(w, "  => the simulated detector is perfect, as Theorem 3.6 predicts")
	default:
		fmt.Fprintf(w, "  => the simulated detector is %d-useful, as Theorem 4.3 predicts\n", ext.T)
	}
	return nil
}

// runRemote serves the pipeline from a udcd daemon and prints the same
// verdict-level report as a local execution (the transformed runs themselves
// stay on the daemon; only the recorded verdicts travel).  The daemon's
// catalog is authoritative — the pipeline name, and the stress flag that
// decides whether violations are the expected result, both resolve on its
// side, so a client can drive pipelines its own build does not know.
func runRemote(w io.Writer, remote, wire, scenario, adversary string, runs int, seed int64) error {
	client := &server.Client{BaseURL: remote, Wire: wire}
	resp, cache, err := client.Extract(server.ExtractRequest{
		Extraction: scenario,
		Adversary:  adversary,
		Runs:       runs,
		SeedBase:   seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pipeline %s: %d runs sampled remotely (mode=%s) [remote cache %s]\n",
		resp.Extraction, resp.Runs, resp.Mode, cache)
	fmt.Fprintf(w, "system built: %d runs kept, %d excluded (UDC violations)\n", resp.Kept, resp.Excluded)
	for _, s := range resp.ExcludedSeeds {
		fmt.Fprintf(w, "  excluded seed %d\n", s)
	}
	fmt.Fprintf(w, "epistemic index: %d points, %d classes, %d intervals\n",
		resp.Index.Points, resp.Index.Classes, resp.Index.Intervals)
	fmt.Fprintf(w, "  property violations: %d across %d transformed runs\n",
		resp.TotalViolations, len(resp.Verdicts))
	if !resp.OK {
		violating := 0
		for _, v := range resp.Verdicts {
			if !v.OK {
				violating++
				fmt.Fprintf(w, "  seed %d: %d violations (first: %s: %s)\n",
					v.Seed, len(v.Violations), v.Violations[0].Rule, v.Violations[0].Detail)
			}
		}
		if resp.Stress {
			fmt.Fprintln(w, "  (stress pipeline: the recorded violations are the expected result)")
			return nil
		}
		return fmt.Errorf("extracted detector violates its properties on %d of %d runs", violating, len(resp.Verdicts))
	}
	switch workload.ExtractionMode(resp.Mode) {
	case workload.ExtractPerfect:
		fmt.Fprintln(w, "  => the simulated detector is perfect, as Theorem 3.6 predicts")
	default:
		fmt.Fprintf(w, "  => the simulated detector is %d-useful, as Theorem 4.3 predicts\n", resp.T)
	}
	return nil
}
