// Command fdextract demonstrates Theorems 3.6 and 4.3: it runs a UDC-attaining
// protocol over many seeds to build a sampled system, applies the
// knowledge-based constructions f (perfect detector) or f' (t-useful
// generalized detector), and verifies the resulting detectors' properties
// against ground truth.
//
// Usage:
//
//	fdextract -mode perfect  -n 5 -runs 20 -failures 3
//	fdextract -mode tuseful  -n 5 -runs 15 -t 2
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/epistemic"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdextract:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	var (
		mode     string
		n        int
		runs     int
		failures int
		t        int
		steps    int
		seed     int64
		drop     float64
	)
	fs := flag.NewFlagSet("fdextract", flag.ContinueOnError)
	fs.StringVar(&mode, "mode", "perfect", "construction to apply: perfect (Theorem 3.6) | tuseful (Theorem 4.3)")
	fs.IntVar(&n, "n", 5, "number of processes")
	fs.IntVar(&runs, "runs", 20, "number of runs in the sampled system")
	fs.IntVar(&failures, "failures", 3, "crashes per run (Theorem 3.6 mode)")
	fs.IntVar(&t, "t", 2, "failure bound (Theorem 4.3 mode)")
	fs.IntVar(&steps, "steps", 450, "simulation horizon per run")
	fs.Int64Var(&seed, "seed", 100, "first seed")
	fs.Float64Var(&drop, "drop", 0.25, "message drop probability")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var spec workload.Spec
	switch mode {
	case "perfect":
		spec = workload.Spec{
			Name:          "fdextract-thm3.6",
			N:             n,
			MaxSteps:      steps,
			TickEvery:     2,
			SuspectEvery:  3,
			Network:       sim.FairLossyNetwork(drop),
			Oracle:        fd.StrongOracle{FalseSuspicionRate: 0.3, Seed: seed},
			Protocol:      core.NewStrongFDUDC,
			Actions:       2 * n,
			LastInitTime:  steps * 2 / 3,
			MaxFailures:   failures,
			ExactFailures: true,
			CrashEnd:      steps / 4,
		}
	case "tuseful":
		spec = workload.Spec{
			Name:          "fdextract-thm4.3",
			N:             n,
			MaxSteps:      steps,
			TickEvery:     2,
			SuspectEvery:  3,
			Network:       sim.FairLossyNetwork(drop),
			Oracle:        fd.FaultySetOracle{},
			Protocol:      core.NewTUsefulUDC(t),
			Actions:       2 * n,
			LastInitTime:  steps * 2 / 3,
			MaxFailures:   t,
			ExactFailures: true,
			CrashEnd:      steps / 4,
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	fmt.Printf("building sampled system: %d runs of %s (n=%d)\n", runs, spec.Name, n)
	sourceRuns := make(model.System, 0, runs)
	udcFailures := 0
	for _, s := range workload.Seeds(seed, runs) {
		res, err := workload.Execute(spec, s)
		if err != nil {
			return err
		}
		if vs := core.CheckUDC(res.Run); len(vs) > 0 {
			udcFailures++
			fmt.Printf("  warning: seed %d violated UDC (%d violations); excluded from the system\n", s, len(vs))
			continue
		}
		sourceRuns = append(sourceRuns, res.Run)
	}
	if len(sourceRuns) == 0 {
		return fmt.Errorf("no UDC-satisfying runs; cannot extract")
	}
	fmt.Printf("system built: %d runs kept, %d excluded\n", len(sourceRuns), udcFailures)

	sys := epistemic.NewSystem(sourceRuns)

	switch mode {
	case "perfect":
		// The source detector is strong but not perfect; report its false
		// suspicions, then show the simulated detector has none.
		sourceFalse := 0
		for _, r := range sourceRuns {
			sourceFalse += len(fd.CheckStrongAccuracy(r))
		}
		fmt.Printf("source (strong) detector: %d false suspicions across the system\n", sourceFalse)

		simulated := core.SimulatePerfectDetector(sys)
		accuracy, completeness := 0, 0
		for _, r := range simulated {
			accuracy += len(fd.CheckStrongAccuracy(r))
			completeness += len(fd.CheckStrongCompleteness(r))
		}
		fmt.Printf("simulated detector (construction P1-P3 of Theorem 3.6):\n")
		fmt.Printf("  strong accuracy violations:     %d\n", accuracy)
		fmt.Printf("  strong completeness violations: %d\n", completeness)
		if accuracy == 0 && completeness == 0 {
			fmt.Println("  => the simulated detector is perfect, as Theorem 3.6 predicts")
			return nil
		}
		return fmt.Errorf("simulated detector violates perfection")
	default:
		simulated := core.SimulateTUsefulDetector(sys)
		accuracy, usefulness := 0, 0
		for _, r := range simulated {
			accuracy += len(fd.CheckGeneralizedStrongAccuracy(r))
			usefulness += len(fd.CheckTUseful(r, t))
		}
		fmt.Printf("simulated generalized detector (construction P3' of Theorem 4.3):\n")
		fmt.Printf("  generalized strong accuracy violations: %d\n", accuracy)
		fmt.Printf("  %d-usefulness violations:               %d\n", t, usefulness)
		if accuracy == 0 && usefulness == 0 {
			fmt.Printf("  => the simulated detector is %d-useful, as Theorem 4.3 predicts\n", t)
			return nil
		}
		return fmt.Errorf("simulated detector violates %d-usefulness", t)
	}
}
