// Command fdextract demonstrates Theorems 3.6 and 4.3: it executes a named
// knowledge-extraction pipeline from the registry catalog — simulate a
// UDC-attaining workload over many seeds, index the recorded runs into an
// epistemic system, apply the knowledge-based construction f (perfect
// detector) or f' (t-useful generalized detector), and verify the extracted
// detector's properties against ground truth.  All stages distribute over a
// worker pool with results byte-identical to a serial execution.
//
// Usage:
//
//	fdextract -scenario kx-perfect -workers 4
//	fdextract -scenario kx-tuseful -runs 32
//	fdextract -scenario kx-perfect -adversary cascade
//	fdextract -list-scenarios
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/registry"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdextract:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	var (
		scenario      string
		adversary     string
		workers       int
		runs          int
		seed          int64
		listScenarios bool
	)
	fs := flag.NewFlagSet("fdextract", flag.ContinueOnError)
	fs.StringVar(&scenario, "scenario", "kx-perfect",
		"extraction pipeline: "+strings.Join(registry.ExtractionNames(), " | "))
	fs.StringVar(&adversary, "adversary", "",
		"fault/network schedule: "+strings.Join(registry.AdversaryNames(), " | ")+" (overrides the scenario's schedule)")
	fs.IntVar(&workers, "workers", 0, "parallel pipeline workers (0 = GOMAXPROCS)")
	fs.IntVar(&runs, "runs", 0, "number of sampled runs (0 = the scenario's standing sample size)")
	fs.Int64Var(&seed, "seed", 0, "first sampling seed (0 = the scenario's standing base seed)")
	fs.BoolVar(&listScenarios, "list-scenarios", false, "list the catalogued extraction pipelines and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if listScenarios {
		for _, sc := range registry.Extractions() {
			fmt.Fprintf(w, "%-28s %s\n", sc.Name, sc.Description)
		}
		return nil
	}

	sc, err := registry.LookupExtraction(scenario)
	if err != nil {
		return err
	}
	ext := sc.Extraction
	if adversary != "" {
		adv, _, err := registry.Adversary(adversary)
		if err != nil {
			return err
		}
		ext.Source.Adversary = adv
	}
	if runs > 0 {
		ext.Runs = runs
	}
	if seed != 0 {
		ext.BaseSeed = seed
	}

	fmt.Fprintf(w, "pipeline %s: sampling %d runs of %s (n=%d, mode=%s)\n",
		ext.Name, ext.Runs, ext.Source.Name, ext.Source.N, ext.Mode)
	result, err := workload.Runner{Workers: workers}.Extract(ext)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "system built: %d runs kept, %d excluded (UDC violations)\n", result.Kept, result.Excluded)
	for _, s := range result.ExcludedSeeds {
		fmt.Fprintf(w, "  excluded seed %d\n", s)
	}
	st := result.Stats
	fmt.Fprintf(w, "epistemic index: %d points, %d classes, %d intervals\n", st.Points, st.Classes, st.Intervals)

	switch ext.Mode {
	case workload.ExtractPerfect:
		fmt.Fprintln(w, "simulated detector (construction P1-P3 of Theorem 3.6):")
	default:
		fmt.Fprintf(w, "simulated generalized detector (construction P3' of Theorem 4.3, t=%d):\n", ext.T)
	}
	fmt.Fprintf(w, "  property violations: %d across %d transformed runs\n",
		result.TotalViolations(), len(result.Simulated))
	if !result.OK() {
		violating := 0
		for _, v := range result.Verdicts {
			if len(v.Violations) > 0 {
				violating++
				fmt.Fprintf(w, "  seed %d: %d violations (first: %v)\n", v.Seed, len(v.Violations), v.Violations[0])
			}
		}
		if sc.Stress {
			fmt.Fprintln(w, "  (stress pipeline: the recorded violations are the expected result)")
			return nil
		}
		return fmt.Errorf("extracted detector violates its properties on %d of %d runs", violating, len(result.Simulated))
	}
	switch ext.Mode {
	case workload.ExtractPerfect:
		fmt.Fprintln(w, "  => the simulated detector is perfect, as Theorem 3.6 predicts")
	default:
		fmt.Fprintf(w, "  => the simulated detector is %d-useful, as Theorem 4.3 predicts\n", ext.T)
	}
	return nil
}
