package main

import "testing"

func TestRunPerfectMode(t *testing.T) {
	args := []string{"-mode", "perfect", "-n", "4", "-runs", "5", "-failures", "2", "-steps", "300"}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTUsefulMode(t *testing.T) {
	args := []string{"-mode", "tuseful", "-n", "4", "-runs", "5", "-t", "1", "-steps", "400"}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-mode", "nonsense"}); err == nil {
		t.Fatalf("expected an error for an unknown mode")
	}
	if err := run([]string{"-bogus-flag"}); err == nil {
		t.Fatalf("expected a flag parse error")
	}
}
