package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPerfectScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-perfect", "-runs", "6", "-workers", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Theorem 3.6") || !strings.Contains(out.String(), "perfect") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "epistemic index:") {
		t.Fatalf("missing index stats in output:\n%s", out.String())
	}
}

func TestRunTUsefulScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-tuseful", "-runs", "5"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Theorem 4.3") || !strings.Contains(out.String(), "2-useful") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"kx-perfect", "kx-tuseful", "kx-perfect-cascade"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("scenario listing missing %s:\n%s", name, out.String())
		}
	}
}

func TestStressScenarioReportsViolationsWithoutFailing(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-perfect-starved", "-runs", "6"}
	if err := run(args, &out); err != nil {
		t.Fatalf("stress pipeline should exit cleanly: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "stress pipeline") {
		t.Fatalf("missing stress note in output:\n%s", out.String())
	}
}

func TestAdversaryOverride(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-perfect", "-runs", "4", "-adversary", "skewed-delays"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nonsense"}, &out); err == nil {
		t.Fatalf("expected an error for an unknown scenario")
	}
	if err := run([]string{"-adversary", "nonsense"}, &out); err == nil {
		t.Fatalf("expected an error for an unknown adversary")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Fatalf("expected a flag parse error")
	}
}
