package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/store"
)

func TestRunPerfectScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-perfect", "-runs", "6", "-workers", "2"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Theorem 3.6") || !strings.Contains(out.String(), "perfect") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "epistemic index:") {
		t.Fatalf("missing index stats in output:\n%s", out.String())
	}
}

func TestRunTUsefulScenario(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-tuseful", "-runs", "5"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Theorem 4.3") || !strings.Contains(out.String(), "2-useful") {
		t.Fatalf("missing verdict in output:\n%s", out.String())
	}
}

func TestListScenarios(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list-scenarios"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"kx-perfect", "kx-tuseful", "kx-perfect-cascade"} {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("scenario listing missing %s:\n%s", name, out.String())
		}
	}
}

func TestStressScenarioReportsViolationsWithoutFailing(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-perfect-starved", "-runs", "6"}
	if err := run(args, &out); err != nil {
		t.Fatalf("stress pipeline should exit cleanly: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "stress pipeline") {
		t.Fatalf("missing stress note in output:\n%s", out.String())
	}
}

func TestAdversaryOverride(t *testing.T) {
	var out bytes.Buffer
	args := []string{"-scenario", "kx-perfect", "-runs", "4", "-adversary", "skewed-delays"}
	if err := run(args, &out); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "nonsense"}, &out); err == nil {
		t.Fatalf("expected an error for an unknown scenario")
	}
	if err := run([]string{"-adversary", "nonsense"}, &out); err == nil {
		t.Fatalf("expected an error for an unknown adversary")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Fatalf("expected a flag parse error")
	}
}

// TestWritesTransformedRuns checks -o: the transformed system lands on disk
// in the binary container and decodes back to the advertised number of runs.
func TestWritesTransformedRuns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "simulated.bin")
	var out bytes.Buffer
	if err := run([]string{"-scenario", "kx-perfect", "-runs", "6", "-o", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := store.DecodeSystem(data)
	if err != nil {
		t.Fatalf("decode system: %v", err)
	}
	if len(runs) != 6 {
		t.Fatalf("decoded %d transformed runs, want 6", len(runs))
	}
}

// TestRemoteExtract serves the pipeline through an in-process daemon.
func TestRemoteExtract(t *testing.T) {
	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out bytes.Buffer
	if err := run([]string{"-remote", ts.URL, "-scenario", "kx-perfect", "-runs", "6"}, &out); err != nil {
		t.Fatalf("remote extract: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "remote cache miss") {
		t.Fatalf("first remote output lacks cache state:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-remote", ts.URL, "-scenario", "kx-perfect", "-runs", "6"}, &out); err != nil {
		t.Fatalf("warm remote extract: %v", err)
	}
	if !strings.Contains(out.String(), "remote cache hit") {
		t.Fatalf("second remote output not a cache hit:\n%s", out.String())
	}

	// The stress pipeline's expected violations do not fail remotely either.
	out.Reset()
	if err := run([]string{"-remote", ts.URL, "-scenario", "kx-perfect-starved", "-runs", "6"}, &out); err != nil {
		t.Fatalf("remote stress extract: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "expected result") {
		t.Fatalf("remote stress output lacks the stress note:\n%s", out.String())
	}

	if err := run([]string{"-remote", ts.URL, "-scenario", "kx-perfect", "-o", "x.bin"}, &out); err == nil {
		t.Fatalf("-remote with -o should fail")
	}
}
