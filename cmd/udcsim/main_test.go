package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/store"
)

func TestRunAllProtocols(t *testing.T) {
	protocols := []struct {
		name  string
		extra []string
	}{
		{name: "nudc"},
		{name: "reliable", extra: []string{"-reliable"}},
		{name: "strong"},
		{name: "tuseful", extra: []string{"-t", "2", "-failures", "2"}},
		{name: "quorum", extra: []string{"-t", "2", "-failures", "2"}},
		{name: "consensus-rotating"},
		{name: "consensus-majority", extra: []string{"-failures", "2", "-stabilize-at", "60"}},
	}
	for _, tc := range protocols {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{
				"-protocol", tc.name,
				"-n", "5",
				"-steps", "300",
				"-quiet",
			}, tc.extra...)
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunWithExplicitOracleAndOutputs(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "run.json")
	args := []string{
		"-protocol", "strong",
		"-oracle", "impermanent-strong",
		"-n", "5",
		"-steps", "300",
		"-failures", "3",
		"-quiet",
		"-timeline", "0",
		"-json", jsonPath,
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-protocol", "does-not-exist"},
		{"-protocol", "strong", "-oracle", "does-not-exist"},
		{"-protocol", "strong", "-check", "does-not-exist"},
		{"-protocol", "strong", "-n", "0"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should have failed", args)
		}
	}
}

func TestRunDetectsViolations(t *testing.T) {
	// The quorum protocol with t >= n/2 over a very lossy network and early
	// crashes violates UDC on this seed; the command must report failure.
	args := []string{
		"-protocol", "quorum",
		"-t", "4",
		"-n", "5",
		"-failures", "4",
		"-drop", "0.85",
		"-crash-end", "25",
		"-steps", "250",
		"-seed", "3",
		"-quiet",
	}
	err := run(args)
	if err == nil {
		t.Skip("this seed happened to coordinate successfully; the negative path is covered by package tests")
	}
}

func TestRunAcceptsAllRegistryOracles(t *testing.T) {
	// Pair each oracle class with a protocol that can exploit it; generalized
	// and absent detectors drive the detector-free/generalized protocols.
	protocolFor := map[string]string{
		"none":       "quorum",
		"faulty-set": "tuseful",
		"trivial":    "tuseful",
	}
	for _, name := range registry.OracleNames() {
		protocol, ok := protocolFor[name]
		if !ok {
			protocol = "strong"
		}
		args := []string{
			"-protocol", protocol,
			"-oracle", name,
			"-n", "5",
			"-t", "2",
			"-steps", "300",
			"-failures", "2",
			"-quiet",
		}
		if err := run(args); err != nil {
			t.Errorf("run with oracle %q: %v", name, err)
		}
	}
}

func TestSweepMode(t *testing.T) {
	args := []string{
		"-protocol", "strong",
		"-n", "5",
		"-steps", "250",
		"-failures", "2",
		"-sweep", "6",
		"-workers", "3",
		"-quiet",
	}
	if err := run(args); err != nil {
		t.Fatalf("sweep run: %v", err)
	}
}

func TestAdversaryMode(t *testing.T) {
	if err := run([]string{"-list-adversaries"}); err != nil {
		t.Fatalf("list-adversaries: %v", err)
	}
	for _, name := range registry.AdversaryNames() {
		// targeted-final deliberately crashes after the last report; paired
		// with a udc check (not an fd-* one) coordination still succeeds
		// because the crashes land after the actions complete.
		args := []string{
			"-adversary", name,
			"-protocol", "strong",
			"-n", "5",
			"-steps", "300",
			"-failures", "2",
			"-quiet",
		}
		if err := run(args); err != nil {
			t.Errorf("run with adversary %q: %v", name, err)
		}
	}
	if err := run([]string{"-adversary", "does-not-exist", "-quiet"}); err == nil {
		t.Errorf("unknown adversary should fail")
	}
}

// TestAdversaryOverridesScenario checks that -adversary swaps the schedule of
// a named scenario: the stress scenario's expected strong-completeness
// violation disappears once its targeted-final schedule is replaced by early
// targeted crashes that the detector has time to report.
func TestAdversaryOverridesScenario(t *testing.T) {
	if err := run([]string{"-scenario", "adv-targeted-final-fd", "-quiet"}); err == nil {
		t.Fatalf("adv-targeted-final-fd should violate strong completeness")
	}
	if err := run([]string{"-scenario", "adv-targeted-final-fd", "-adversary", "targeted", "-quiet"}); err != nil {
		t.Fatalf("early targeted crashes should satisfy fd-perfect: %v", err)
	}
}

func TestScenarioMode(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatalf("list-scenarios: %v", err)
	}
	for _, args := range [][]string{
		{"-scenario", "prop3.1-strong-udc", "-quiet"},
		{"-scenario", "cor4.2-quorum-udc", "-sweep", "4", "-workers", "2", "-quiet"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-scenario", "does-not-exist"}); err == nil {
		t.Fatalf("unknown scenario should fail")
	}
}

// TestBinaryRunFileRoundTrip writes a recorded run with -o in both formats
// and decodes each back, including a re-check of the specification.
func TestBinaryRunFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	binPath := filepath.Join(dir, "run.bin")
	jsonPath := filepath.Join(dir, "run.json")
	base := []string{"-protocol", "strong", "-n", "5", "-steps", "300", "-failures", "2", "-quiet"}
	if err := run(append(append([]string{}, base...), "-o", binPath)); err != nil {
		t.Fatalf("write bin: %v", err)
	}
	if err := run(append(append([]string{}, base...), "-o", jsonPath, "-format", "json")); err != nil {
		t.Fatalf("write json: %v", err)
	}
	// Binary files are smaller than the JSON for the same run.
	binInfo, err1 := os.Stat(binPath)
	jsonInfo, err2 := os.Stat(jsonPath)
	if err1 != nil || err2 != nil {
		t.Fatalf("stat: %v, %v", err1, err2)
	}
	if binInfo.Size() >= jsonInfo.Size() {
		t.Fatalf("binary run file (%d bytes) not smaller than JSON (%d bytes)", binInfo.Size(), jsonInfo.Size())
	}
	// -format auto sniffs both; an explicit -check re-evaluates the run.
	for _, path := range []string{binPath, jsonPath} {
		if err := run([]string{"-decode", path, "-quiet", "-check", "udc"}); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
	}
	if err := run([]string{"-decode", filepath.Join(dir, "missing.bin"), "-quiet"}); err == nil {
		t.Fatalf("decoding a missing file should fail")
	}
	if err := run([]string{"-decode", binPath, "-format", "nope"}); err == nil {
		t.Fatalf("unknown format should fail")
	}
}

// TestRemoteSweep serves a sweep through an in-process daemon and checks the
// -remote mode's validation.
func TestRemoteSweep(t *testing.T) {
	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	args := []string{"-remote", ts.URL, "-scenario", "prop2.3-nudc", "-sweep", "4", "-quiet"}
	if err := run(args); err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	// Second run of the same request is served from the daemon's cache.
	if err := run(args); err != nil {
		t.Fatalf("remote warm sweep: %v", err)
	}
	// The cold sweep persisted 4 per-seed records plus the window record;
	// the warm sweep was a pure window-record hit.
	if st := srv.Store().Stats(); st.Puts != 5 || st.Hits() == 0 {
		t.Fatalf("daemon store stats after two identical remote sweeps: %+v", st)
	}
	// A grown window through the same client path is a partial hit — the
	// daemon's X-Cache verdict the summary line prints comes back as
	// "partial", and the scheduler classifies it so.
	if err := run([]string{"-remote", ts.URL, "-scenario", "prop2.3-nudc", "-sweep", "8", "-quiet"}); err != nil {
		t.Fatalf("remote grown sweep: %v", err)
	}
	if ss := srv.SchedulerStats(); ss.PartialHits != 1 || ss.FullHits != 1 {
		t.Fatalf("scheduler stats after grown remote sweep: %+v", ss)
	}

	if err := run([]string{"-remote", ts.URL, "-sweep", "4"}); err == nil {
		t.Fatalf("-remote without -scenario should fail")
	}
	// Output flags need a locally recorded run; silently dropping them would
	// lose the user's requested file.
	if err := run([]string{"-remote", ts.URL, "-scenario", "prop2.3-nudc", "-sweep", "4", "-o", "x.bin"}); err == nil {
		t.Fatalf("-remote with -o should fail")
	}
	if err := run([]string{"-remote", ts.URL, "-scenario", "prop2.3-nudc", "-sweep", "4", "-workers", "2"}); err == nil {
		t.Fatalf("-remote with -workers should fail")
	}
	if err := run([]string{"-remote", ts.URL, "-scenario", "prop2.3-nudc"}); err == nil {
		t.Fatalf("-remote without -sweep should fail")
	}
	if err := run([]string{"-remote", ts.URL, "-scenario", "does-not-exist", "-sweep", "4"}); err == nil {
		t.Fatalf("unknown remote scenario should fail")
	}
}
