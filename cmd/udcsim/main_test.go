package main

import (
	"path/filepath"
	"testing"

	"repro/internal/registry"
)

func TestRunAllProtocols(t *testing.T) {
	protocols := []struct {
		name  string
		extra []string
	}{
		{name: "nudc"},
		{name: "reliable", extra: []string{"-reliable"}},
		{name: "strong"},
		{name: "tuseful", extra: []string{"-t", "2", "-failures", "2"}},
		{name: "quorum", extra: []string{"-t", "2", "-failures", "2"}},
		{name: "consensus-rotating"},
		{name: "consensus-majority", extra: []string{"-failures", "2", "-stabilize-at", "60"}},
	}
	for _, tc := range protocols {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{
				"-protocol", tc.name,
				"-n", "5",
				"-steps", "300",
				"-quiet",
			}, tc.extra...)
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunWithExplicitOracleAndOutputs(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "run.json")
	args := []string{
		"-protocol", "strong",
		"-oracle", "impermanent-strong",
		"-n", "5",
		"-steps", "300",
		"-failures", "3",
		"-quiet",
		"-timeline", "0",
		"-json", jsonPath,
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-protocol", "does-not-exist"},
		{"-protocol", "strong", "-oracle", "does-not-exist"},
		{"-protocol", "strong", "-check", "does-not-exist"},
		{"-protocol", "strong", "-n", "0"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should have failed", args)
		}
	}
}

func TestRunDetectsViolations(t *testing.T) {
	// The quorum protocol with t >= n/2 over a very lossy network and early
	// crashes violates UDC on this seed; the command must report failure.
	args := []string{
		"-protocol", "quorum",
		"-t", "4",
		"-n", "5",
		"-failures", "4",
		"-drop", "0.85",
		"-crash-end", "25",
		"-steps", "250",
		"-seed", "3",
		"-quiet",
	}
	err := run(args)
	if err == nil {
		t.Skip("this seed happened to coordinate successfully; the negative path is covered by package tests")
	}
}

func TestRunAcceptsAllRegistryOracles(t *testing.T) {
	// Pair each oracle class with a protocol that can exploit it; generalized
	// and absent detectors drive the detector-free/generalized protocols.
	protocolFor := map[string]string{
		"none":       "quorum",
		"faulty-set": "tuseful",
		"trivial":    "tuseful",
	}
	for _, name := range registry.OracleNames() {
		protocol, ok := protocolFor[name]
		if !ok {
			protocol = "strong"
		}
		args := []string{
			"-protocol", protocol,
			"-oracle", name,
			"-n", "5",
			"-t", "2",
			"-steps", "300",
			"-failures", "2",
			"-quiet",
		}
		if err := run(args); err != nil {
			t.Errorf("run with oracle %q: %v", name, err)
		}
	}
}

func TestSweepMode(t *testing.T) {
	args := []string{
		"-protocol", "strong",
		"-n", "5",
		"-steps", "250",
		"-failures", "2",
		"-sweep", "6",
		"-workers", "3",
		"-quiet",
	}
	if err := run(args); err != nil {
		t.Fatalf("sweep run: %v", err)
	}
}

func TestAdversaryMode(t *testing.T) {
	if err := run([]string{"-list-adversaries"}); err != nil {
		t.Fatalf("list-adversaries: %v", err)
	}
	for _, name := range registry.AdversaryNames() {
		// targeted-final deliberately crashes after the last report; paired
		// with a udc check (not an fd-* one) coordination still succeeds
		// because the crashes land after the actions complete.
		args := []string{
			"-adversary", name,
			"-protocol", "strong",
			"-n", "5",
			"-steps", "300",
			"-failures", "2",
			"-quiet",
		}
		if err := run(args); err != nil {
			t.Errorf("run with adversary %q: %v", name, err)
		}
	}
	if err := run([]string{"-adversary", "does-not-exist", "-quiet"}); err == nil {
		t.Errorf("unknown adversary should fail")
	}
}

// TestAdversaryOverridesScenario checks that -adversary swaps the schedule of
// a named scenario: the stress scenario's expected strong-completeness
// violation disappears once its targeted-final schedule is replaced by early
// targeted crashes that the detector has time to report.
func TestAdversaryOverridesScenario(t *testing.T) {
	if err := run([]string{"-scenario", "adv-targeted-final-fd", "-quiet"}); err == nil {
		t.Fatalf("adv-targeted-final-fd should violate strong completeness")
	}
	if err := run([]string{"-scenario", "adv-targeted-final-fd", "-adversary", "targeted", "-quiet"}); err != nil {
		t.Fatalf("early targeted crashes should satisfy fd-perfect: %v", err)
	}
}

func TestScenarioMode(t *testing.T) {
	if err := run([]string{"-list-scenarios"}); err != nil {
		t.Fatalf("list-scenarios: %v", err)
	}
	for _, args := range [][]string{
		{"-scenario", "prop3.1-strong-udc", "-quiet"},
		{"-scenario", "cor4.2-quorum-udc", "-sweep", "4", "-workers", "2", "-quiet"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
	}
	if err := run([]string{"-scenario", "does-not-exist"}); err == nil {
		t.Fatalf("unknown scenario should fail")
	}
}
