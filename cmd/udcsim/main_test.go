package main

import (
	"path/filepath"
	"testing"
)

func TestRunAllProtocols(t *testing.T) {
	protocols := []struct {
		name  string
		extra []string
	}{
		{name: "nudc"},
		{name: "reliable", extra: []string{"-reliable"}},
		{name: "strong"},
		{name: "tuseful", extra: []string{"-t", "2", "-failures", "2"}},
		{name: "quorum", extra: []string{"-t", "2", "-failures", "2"}},
		{name: "consensus-rotating"},
		{name: "consensus-majority", extra: []string{"-failures", "2", "-stabilize-at", "60"}},
	}
	for _, tc := range protocols {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{
				"-protocol", tc.name,
				"-n", "5",
				"-steps", "300",
				"-quiet",
			}, tc.extra...)
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}

func TestRunWithExplicitOracleAndOutputs(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "run.json")
	args := []string{
		"-protocol", "strong",
		"-oracle", "impermanent-strong",
		"-n", "5",
		"-steps", "300",
		"-failures", "3",
		"-quiet",
		"-timeline", "0",
		"-json", jsonPath,
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-protocol", "does-not-exist"},
		{"-protocol", "strong", "-oracle", "does-not-exist"},
		{"-protocol", "strong", "-check", "does-not-exist"},
		{"-protocol", "strong", "-n", "0"},
		{"-definitely-not-a-flag"},
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should have failed", args)
		}
	}
}

func TestRunDetectsViolations(t *testing.T) {
	// The quorum protocol with t >= n/2 over a very lossy network and early
	// crashes violates UDC on this seed; the command must report failure.
	args := []string{
		"-protocol", "quorum",
		"-t", "4",
		"-n", "5",
		"-failures", "4",
		"-drop", "0.85",
		"-crash-end", "25",
		"-steps", "250",
		"-seed", "3",
		"-quiet",
	}
	err := run(args)
	if err == nil {
		t.Skip("this seed happened to coordinate successfully; the negative path is covered by package tests")
	}
}

func TestSelectOracleCoversAllNames(t *testing.T) {
	names := []string{"none", "", "perfect", "strong", "weak", "impermanent-strong",
		"impermanent-weak", "eventually-strong", "faulty-set", "trivial"}
	for _, name := range names {
		if _, err := selectOracle(name, options{t: 2, seed: 1, stabilize: 50}); err != nil {
			t.Errorf("selectOracle(%q): %v", name, err)
		}
	}
	if _, err := selectOracle("bogus", options{}); err == nil {
		t.Errorf("selectOracle(bogus) should fail")
	}
}
