// Command udcsim runs the repository's UDC, nUDC and consensus protocols
// under a configurable network regime, failure pattern and failure detector,
// checks the relevant specification on the recorded runs, and prints a
// summary.  All protocols, oracles, checks and named scenarios are resolved
// through internal/registry.
//
// It has two modes.  The default runs a single simulation and prints its
// trace summary.  With -sweep N it runs N seeds — across -workers parallel
// engines (default GOMAXPROCS) — and prints the aggregated sweep result; the
// aggregates are byte-identical to a serial sweep of the same seeds.
//
// Examples:
//
//	udcsim -protocol strong -oracle strong -n 6 -failures 4 -drop 0.3
//	udcsim -protocol quorum -t 2 -n 7 -failures 2
//	udcsim -protocol consensus-majority -oracle eventually-strong -n 7 -failures 3
//	udcsim -protocol nudc -check nudc -failures 6 -json run.json
//	udcsim -scenario prop3.1-strong-udc -sweep 200 -workers 8
//	udcsim -adversary burst-loss -protocol strong -sweep 100
//	udcsim -scenario adv-targeted-final-fd -quiet
//	udcsim -list-scenarios
//	udcsim -list-adversaries
//
// Recorded runs can be written in the compact binary container (-o run.bin,
// -format bin|json) and decoded again (-decode run.bin); with -remote the
// sweep is served by a udcd daemon — cached, coalesced and batched — instead
// of simulating locally:
//
//	udcsim -protocol strong -o run.bin
//	udcsim -decode run.bin
//	udcsim -remote http://127.0.0.1:8080 -scenario prop3.1-strong-udc -sweep 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/model"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udcsim:", err)
		os.Exit(1)
	}
}

type options struct {
	protocol        string
	oracle          string
	check           string
	scenario        string
	adversary       string
	listScenarios   bool
	listAdversaries bool
	sweep           int
	workers         int
	n               int
	t               int
	seed            int64
	steps           int
	actions         int
	failures        int
	exact           bool
	drop            float64
	reliable        bool
	crashEnd        int
	tick            int
	suspect         int
	jsonPath        string
	outPath         string
	format          string
	decodePath      string
	remote          string
	wire            string
	timeline        int
	quiet           bool
	verbose         bool
	stabilize       int
}

func parseOptions(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("udcsim", flag.ContinueOnError)
	fs.StringVar(&o.protocol, "protocol", "strong",
		"protocol: "+strings.Join(registry.ProtocolNames(), " | "))
	fs.StringVar(&o.oracle, "oracle", "",
		"failure detector: "+strings.Join(registry.OracleNames(), " | ")+" (default chosen per protocol)")
	fs.StringVar(&o.check, "check", "",
		"specification to check: "+strings.Join(registry.CheckNames(), " | ")+" (default chosen per protocol)")
	fs.StringVar(&o.scenario, "scenario", "",
		"run a named scenario from the registry catalog instead of assembling one from flags")
	fs.BoolVar(&o.listScenarios, "list-scenarios", false, "list the catalogued scenarios and exit")
	fs.StringVar(&o.adversary, "adversary", "",
		"fault/network schedule: "+strings.Join(registry.AdversaryNames(), " | ")+" (default uniform; overrides the scenario's schedule when combined with -scenario)")
	fs.BoolVar(&o.listAdversaries, "list-adversaries", false, "list the catalogued adversaries and exit")
	fs.IntVar(&o.sweep, "sweep", 0, "sweep this many seeds (starting at -seed) instead of a single run")
	fs.IntVar(&o.workers, "workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	fs.IntVar(&o.n, "n", 6, "number of processes")
	fs.IntVar(&o.t, "t", 2, "failure bound t used by tuseful/quorum protocols and the trivial detector")
	fs.Int64Var(&o.seed, "seed", 1, "random seed (sweep mode: first seed)")
	fs.IntVar(&o.steps, "steps", 400, "simulation horizon in steps")
	fs.IntVar(&o.actions, "actions", 6, "number of coordination actions to initiate")
	fs.IntVar(&o.failures, "failures", 2, "maximum number of crashes to inject")
	fs.BoolVar(&o.exact, "exact-failures", true, "inject exactly -failures crashes instead of a random number up to it")
	fs.Float64Var(&o.drop, "drop", 0.3, "per-message drop probability on fair-lossy channels")
	fs.BoolVar(&o.reliable, "reliable", false, "use reliable channels instead of fair-lossy ones")
	fs.IntVar(&o.crashEnd, "crash-end", 0, "latest crash time (0 = steps/2)")
	fs.IntVar(&o.tick, "tick", 2, "protocol tick period")
	fs.IntVar(&o.suspect, "suspect-every", 3, "failure-detector query period")
	fs.StringVar(&o.jsonPath, "json", "", "write the recorded run as JSON to this file (shorthand for -o with -format json)")
	fs.StringVar(&o.outPath, "o", "", "write the recorded run to this file in -format")
	fs.StringVar(&o.format, "format", store.FormatAuto, "run file format for -o and -decode: bin | json | auto (bin on encode, sniffed on decode)")
	fs.StringVar(&o.decodePath, "decode", "", "decode a recorded run file and print its summary instead of simulating (with -check, also re-check it; with -o/-json, re-export it, converting formats)")
	fs.StringVar(&o.remote, "remote", "", "udcd base URL: serve the sweep from the daemon instead of simulating locally (requires -scenario and -sweep; the summary line reports the daemon's X-Cache verdict: hit, partial or miss)")
	fs.StringVar(&o.wire, "wire", "bin", "with -remote: response wire format, bin (the store's codec container, decoded locally) or json")
	fs.IntVar(&o.timeline, "timeline", -1, "print the full event timeline of this process id")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the per-run summary")
	fs.BoolVar(&o.verbose, "v", false, "with -remote: also print the daemon's Server-Timing stage breakdown")
	fs.IntVar(&o.stabilize, "stabilize-at", 100, "stabilisation time for the eventually-strong detector")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// registryOptions maps the command-line knobs onto registry constructor
// options.  An explicit -stabilize-at 0 means "accurate from the start",
// which the registry encodes as a negative value.
func registryOptions(o options) registry.Options {
	stabilize := o.stabilize
	if stabilize == 0 {
		stabilize = -1
	}
	return registry.Options{
		N:           o.n,
		T:           o.t,
		Seed:        o.seed,
		StabilizeAt: stabilize,
	}
}

func run(args []string) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.decodePath != "" {
		return runDecode(o)
	}
	if o.remote != "" {
		return runRemote(o)
	}
	if o.listScenarios {
		for _, sc := range registry.Scenarios() {
			fmt.Printf("%-32s %s\n", sc.Name, sc.Description)
		}
		return nil
	}
	if o.listAdversaries {
		for _, info := range registry.Adversaries() {
			kind := "crashes"
			if info.Shapes {
				kind = "crashes+channels"
			}
			fmt.Printf("%-18s %-16s %s\n", info.Name, kind, info.Description)
		}
		return nil
	}

	var (
		spec       workload.Spec
		eval       workload.Evaluator
		checkName  string
		oracleName string
	)
	if o.scenario != "" {
		sc, err := registry.LookupScenario(o.scenario)
		if err != nil {
			return err
		}
		spec, eval, checkName = sc.Spec, sc.Eval, sc.Check
		oracleName = "scenario-defined"
	} else {
		ropts := registryOptions(o)
		factory, info, err := registry.Protocol(o.protocol, ropts)
		if err != nil {
			return err
		}
		oracleName = o.oracle
		if oracleName == "" {
			oracleName = info.DefaultOracle
		}
		oracle, err := registry.Oracle(oracleName, ropts)
		if err != nil {
			return err
		}
		checkName = o.check
		if checkName == "" {
			checkName = info.DefaultCheck
		}
		eval, err = registry.Evaluator(checkName, ropts)
		if err != nil {
			return err
		}

		net := sim.FairLossyNetwork(o.drop)
		if o.reliable {
			net = sim.ReliableNetwork()
		}
		spec = workload.Spec{
			Name:          "udcsim/" + o.protocol,
			N:             o.n,
			MaxSteps:      o.steps,
			TickEvery:     o.tick,
			SuspectEvery:  o.suspect,
			Network:       net,
			Oracle:        oracle,
			Protocol:      factory,
			Actions:       o.actions,
			MaxFailures:   o.failures,
			ExactFailures: o.exact,
			CrashEnd:      o.crashEnd,
		}
	}

	if o.adversary != "" {
		adv, _, err := registry.Adversary(o.adversary)
		if err != nil {
			return err
		}
		spec.Adversary = adv
	}

	if o.sweep > 0 {
		return runSweep(o, spec, eval, checkName)
	}
	return runSingle(o, spec, eval, checkName, oracleName)
}

// runDecode loads a recorded run file (binary container or trace JSON) and
// prints the same trace-level summary a fresh simulation would, optionally
// re-checking a specification on it and re-exporting it with -o/-json.  The
// read goes through a Transcoder, so inspecting or converting a run never
// materialises a second copy of its events.
func runDecode(o options) error {
	run, err := store.NewTranscoder().ReadRunFile(o.decodePath, o.format)
	if err != nil {
		return err
	}
	if o.jsonPath != "" {
		if err := store.WriteRunFile(o.jsonPath, store.FormatJSON, run); err != nil {
			return err
		}
		fmt.Printf("run written to %s\n", o.jsonPath)
	}
	if o.outPath != "" {
		if o.outPath == o.decodePath {
			return fmt.Errorf("-o %s would overwrite the file being decoded", o.outPath)
		}
		if err := store.WriteRunFile(o.outPath, o.format, run); err != nil {
			return err
		}
		fmt.Printf("run written to %s (format %s)\n", o.outPath, o.format)
	}
	if !o.quiet {
		fmt.Printf("decoded %s: ", o.decodePath)
		fmt.Print(trace.Summary(run))
	}
	if o.timeline >= 0 && o.timeline < run.N {
		fmt.Printf("timeline of process %d:\n%s", o.timeline, trace.Timeline(run, model.ProcID(o.timeline)))
	}
	if o.check == "" {
		return nil
	}
	eval, err := registry.Evaluator(o.check, registry.Options{N: run.N})
	if err != nil {
		return err
	}
	if violations := eval(run); len(violations) > 0 {
		fmt.Printf("%s check FAILED with %d violations:\n", strings.ToUpper(o.check), len(violations))
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		return fmt.Errorf("%s violated", o.check)
	}
	fmt.Printf("%s check passed (%d actions, faulty=%s)\n", strings.ToUpper(o.check), len(run.InitiatedActions()), run.Faulty())
	return nil
}

// runRemote serves the sweep from a udcd daemon.  The daemon only knows the
// catalogued scenarios, so -scenario is required; its response is
// byte-identical to a local sweep of the same seeds.
func runRemote(o options) error {
	if o.scenario == "" {
		return fmt.Errorf("-remote requires -scenario (the daemon serves the catalogued scenarios; see -list-scenarios)")
	}
	if o.sweep <= 0 {
		return fmt.Errorf("-remote requires -sweep (the daemon serves sweeps, not single traces)")
	}
	if o.outPath != "" || o.jsonPath != "" {
		return fmt.Errorf("-o/-json need a recorded run, which only local execution materialises; drop -remote or the output flag")
	}
	if o.workers != 0 {
		return fmt.Errorf("-workers sizes the local pool; the daemon's fleet is configured on its side (drop -remote or -workers)")
	}
	switch o.wire {
	case "bin", "json":
	default:
		return fmt.Errorf("-wire must be bin or json, not %q", o.wire)
	}
	client := &server.Client{BaseURL: o.remote, Wire: o.wire}
	resp, cache, err := client.Sweep(server.SweepRequest{
		Scenario:  o.scenario,
		Adversary: o.adversary,
		Seeds:     o.sweep,
		SeedBase:  o.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-34s ok=%d/%d msgs=%8.0f latency=%6.1f violations=%d [remote cache %s]\n",
		resp.Scenario, resp.Successes, resp.Seeds, resp.MeanMessages, resp.MeanLatency, resp.TotalViolations, cache)
	if o.verbose {
		fmt.Printf("  wire: format=%s bytes=%d\n", client.WireFormat, client.WireBytes)
		if client.ServerTiming != "" {
			fmt.Printf("  server-timing: %s\n", client.ServerTiming)
		}
		if client.TraceID != "" {
			fmt.Printf("  trace: %s (GET %s/debug/traces/%s)\n", client.TraceID, strings.TrimRight(o.remote, "/"), client.TraceID)
		}
	}
	if !o.quiet {
		for _, out := range resp.Outcomes {
			if !out.OK {
				fmt.Printf("  seed %d: %d violations (first: %s: %s)\n",
					out.Seed, len(out.Violations), out.Violations[0].Rule, out.Violations[0].Detail)
			}
		}
	}
	if resp.TotalViolations > 0 {
		return fmt.Errorf("%s violated on %d of %d seeds", resp.Check, resp.Seeds-resp.Successes, resp.Seeds)
	}
	fmt.Printf("%s check passed on all %d seeds\n", strings.ToUpper(resp.Check), resp.Seeds)
	return nil
}

// runSweep sweeps the spec over o.sweep seeds with a parallel worker pool.
func runSweep(o options, spec workload.Spec, eval workload.Evaluator, checkName string) error {
	seeds := workload.Seeds(o.seed, o.sweep)
	runner := workload.Runner{Workers: o.workers}
	result, err := runner.Sweep(spec, seeds, eval)
	if err != nil {
		return err
	}
	fmt.Println(result.String())
	if !o.quiet {
		for _, out := range result.Outcomes {
			if !out.OK() {
				fmt.Printf("  seed %d: %d violations (first: %v)\n", out.Seed, len(out.Violations), out.Violations[0])
			}
		}
	}
	if result.TotalViolations() > 0 {
		return fmt.Errorf("%s violated on %d of %d seeds",
			checkName, len(result.Outcomes)-result.Successes(), len(result.Outcomes))
	}
	fmt.Printf("%s check passed on all %d seeds\n", strings.ToUpper(checkName), len(result.Outcomes))
	return nil
}

// runSingle runs one seed and prints the trace-level summary.
func runSingle(o options, spec workload.Spec, eval workload.Evaluator, checkName, oracleName string) error {
	res, err := workload.Execute(spec, o.seed)
	if err != nil {
		return err
	}
	violations := eval(res.Run)

	if !o.quiet {
		adversaryName := "uniform"
		if spec.Adversary != nil {
			adversaryName = spec.Adversary.Name()
		}
		fmt.Printf("scenario=%s oracle=%s check=%s adversary=%s seed=%d\n", spec.Name, oracleName, checkName, adversaryName, o.seed)
		fmt.Print(trace.Summary(res.Run))
		fmt.Printf("stats: sent=%d delivered=%d dropped=%d duplicated=%d suspect-reports=%d\n",
			res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.MessagesDropped,
			res.Stats.MessagesDuplicated, res.Stats.SuspectEvents)
	}
	if o.timeline >= 0 && o.timeline < spec.N {
		fmt.Printf("timeline of process %d:\n%s", o.timeline, trace.Timeline(res.Run, model.ProcID(o.timeline)))
	}
	if o.jsonPath != "" {
		if err := store.WriteRunFile(o.jsonPath, store.FormatJSON, res.Run); err != nil {
			return err
		}
		fmt.Printf("run written to %s\n", o.jsonPath)
	}
	if o.outPath != "" {
		if err := store.WriteRunFile(o.outPath, o.format, res.Run); err != nil {
			return err
		}
		fmt.Printf("run written to %s (format %s)\n", o.outPath, o.format)
	}

	if len(violations) > 0 {
		fmt.Printf("%s check FAILED with %d violations:\n", strings.ToUpper(checkName), len(violations))
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		return fmt.Errorf("%s violated", checkName)
	}
	fmt.Printf("%s check passed (%d actions, faulty=%s)\n", strings.ToUpper(checkName), len(res.Run.InitiatedActions()), res.Run.Faulty())
	return nil
}
