// Command udcsim runs a single simulated execution of any of the repository's
// UDC, nUDC or consensus protocols under a configurable network regime,
// failure pattern and failure detector, checks the relevant specification on
// the recorded run, and prints a summary.
//
// Examples:
//
//	udcsim -protocol strong -oracle strong -n 6 -failures 4 -drop 0.3
//	udcsim -protocol quorum -t 2 -n 7 -failures 2
//	udcsim -protocol consensus-majority -oracle eventually-strong -n 7 -failures 3
//	udcsim -protocol nudc -check nudc -failures 6 -json run.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "udcsim:", err)
		os.Exit(1)
	}
}

type options struct {
	protocol  string
	oracle    string
	check     string
	n         int
	t         int
	seed      int64
	steps     int
	actions   int
	failures  int
	exact     bool
	drop      float64
	reliable  bool
	crashEnd  int
	tick      int
	suspect   int
	jsonPath  string
	timeline  int
	quiet     bool
	stabilize int
}

func parseOptions(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("udcsim", flag.ContinueOnError)
	fs.StringVar(&o.protocol, "protocol", "strong",
		"protocol: nudc | reliable | strong | tuseful | quorum | consensus-rotating | consensus-majority")
	fs.StringVar(&o.oracle, "oracle", "",
		"failure detector: none | perfect | strong | weak | impermanent-strong | impermanent-weak | eventually-strong | faulty-set | trivial (default chosen per protocol)")
	fs.StringVar(&o.check, "check", "",
		"specification to check: udc | nudc | consensus (default chosen per protocol)")
	fs.IntVar(&o.n, "n", 6, "number of processes")
	fs.IntVar(&o.t, "t", 2, "failure bound t used by tuseful/quorum protocols and the trivial detector")
	fs.Int64Var(&o.seed, "seed", 1, "random seed")
	fs.IntVar(&o.steps, "steps", 400, "simulation horizon in steps")
	fs.IntVar(&o.actions, "actions", 6, "number of coordination actions to initiate")
	fs.IntVar(&o.failures, "failures", 2, "maximum number of crashes to inject")
	fs.BoolVar(&o.exact, "exact-failures", true, "inject exactly -failures crashes instead of a random number up to it")
	fs.Float64Var(&o.drop, "drop", 0.3, "per-message drop probability on fair-lossy channels")
	fs.BoolVar(&o.reliable, "reliable", false, "use reliable channels instead of fair-lossy ones")
	fs.IntVar(&o.crashEnd, "crash-end", 0, "latest crash time (0 = steps/2)")
	fs.IntVar(&o.tick, "tick", 2, "protocol tick period")
	fs.IntVar(&o.suspect, "suspect-every", 3, "failure-detector query period")
	fs.StringVar(&o.jsonPath, "json", "", "write the recorded run as JSON to this file")
	fs.IntVar(&o.timeline, "timeline", -1, "print the full event timeline of this process id")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the per-run summary")
	fs.IntVar(&o.stabilize, "stabilize-at", 100, "stabilisation time for the eventually-strong detector")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

func run(args []string) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}

	proposals := make(map[model.ProcID]int, o.n)
	for i := 0; i < o.n; i++ {
		proposals[model.ProcID(i)] = 100 + i
	}

	factory, defaultOracle, defaultCheck, err := selectProtocol(o, proposals)
	if err != nil {
		return err
	}
	oracleName := o.oracle
	if oracleName == "" {
		oracleName = defaultOracle
	}
	oracle, err := selectOracle(oracleName, o)
	if err != nil {
		return err
	}
	checkName := o.check
	if checkName == "" {
		checkName = defaultCheck
	}

	net := sim.FairLossyNetwork(o.drop)
	if o.reliable {
		net = sim.ReliableNetwork()
	}
	spec := workload.Spec{
		Name:          "udcsim/" + o.protocol,
		N:             o.n,
		MaxSteps:      o.steps,
		TickEvery:     o.tick,
		SuspectEvery:  o.suspect,
		Network:       net,
		Oracle:        oracle,
		Protocol:      factory,
		Actions:       o.actions,
		MaxFailures:   o.failures,
		ExactFailures: o.exact,
		CrashEnd:      o.crashEnd,
	}

	res, err := workload.Execute(spec, o.seed)
	if err != nil {
		return err
	}

	violations, err := check(checkName, res.Run, proposals)
	if err != nil {
		return err
	}

	if !o.quiet {
		fmt.Printf("protocol=%s oracle=%s check=%s seed=%d\n", o.protocol, oracleName, checkName, o.seed)
		fmt.Print(trace.Summary(res.Run))
		fmt.Printf("stats: sent=%d delivered=%d dropped=%d suspect-reports=%d\n",
			res.Stats.MessagesSent, res.Stats.MessagesDelivered, res.Stats.MessagesDropped, res.Stats.SuspectEvents)
	}
	if o.timeline >= 0 && o.timeline < o.n {
		fmt.Printf("timeline of process %d:\n%s", o.timeline, trace.Timeline(res.Run, model.ProcID(o.timeline)))
	}
	if o.jsonPath != "" {
		f, err := os.Create(o.jsonPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", o.jsonPath, err)
		}
		defer f.Close()
		if err := trace.EncodeJSON(f, res.Run); err != nil {
			return err
		}
		fmt.Printf("run written to %s\n", o.jsonPath)
	}

	if len(violations) > 0 {
		fmt.Printf("%s check FAILED with %d violations:\n", strings.ToUpper(checkName), len(violations))
		for _, v := range violations {
			fmt.Println("  -", v)
		}
		return fmt.Errorf("%s violated", checkName)
	}
	fmt.Printf("%s check passed (%d actions, faulty=%s)\n", strings.ToUpper(checkName), len(res.Run.InitiatedActions()), res.Run.Faulty())
	return nil
}

// selectProtocol maps the -protocol flag onto a factory plus sensible default
// oracle and check names.
func selectProtocol(o options, proposals map[model.ProcID]int) (sim.ProtocolFactory, string, string, error) {
	switch o.protocol {
	case "nudc":
		return core.NewNUDC, "none", "nudc", nil
	case "reliable":
		return core.NewReliableUDC, "none", "udc", nil
	case "strong":
		return core.NewStrongFDUDC, "strong", "udc", nil
	case "tuseful":
		return core.NewTUsefulUDC(o.t), "faulty-set", "udc", nil
	case "quorum":
		return core.NewQuorumUDC(o.t), "none", "udc", nil
	case "consensus-rotating":
		return consensus.NewRotating(proposals), "strong", "consensus", nil
	case "consensus-majority":
		return consensus.NewMajority(proposals), "eventually-strong", "consensus", nil
	default:
		return nil, "", "", fmt.Errorf("unknown protocol %q", o.protocol)
	}
}

// selectOracle maps the -oracle flag onto a detector implementation.
func selectOracle(name string, o options) (fd.Oracle, error) {
	switch name {
	case "none", "":
		return nil, nil
	case "perfect":
		return fd.PerfectOracle{}, nil
	case "strong":
		return fd.StrongOracle{FalseSuspicionRate: 0.15, Seed: o.seed}, nil
	case "weak":
		return fd.GossipOracle{Inner: fd.WeakOracle{}, Delay: 3}, nil
	case "impermanent-strong":
		return fd.ImpermanentStrongOracle{Window: 4}, nil
	case "impermanent-weak":
		return fd.GossipOracle{Inner: fd.ImpermanentWeakOracle{Window: 4}, Delay: 3}, nil
	case "eventually-strong":
		return fd.EventuallyStrongOracle{StabilizeAt: o.stabilize, ChaosRate: 0.15, Seed: o.seed}, nil
	case "faulty-set":
		return fd.FaultySetOracle{}, nil
	case "trivial":
		return fd.TrivialGeneralizedOracle{T: o.t}, nil
	default:
		return nil, fmt.Errorf("unknown oracle %q", name)
	}
}

// check runs the requested specification checker.
func check(name string, r *model.Run, proposals map[model.ProcID]int) ([]model.Violation, error) {
	switch name {
	case "udc":
		return core.CheckUDC(r), nil
	case "nudc":
		return core.CheckNUDC(r), nil
	case "consensus":
		return consensus.CheckConsensus(r, proposals), nil
	default:
		return nil, fmt.Errorf("unknown check %q", name)
	}
}
