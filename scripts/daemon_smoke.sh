#!/bin/sh
# daemon_smoke.sh — end-to-end smoke of the udcd serving layer.
#
# Boots the daemon on a random port with a throwaway store and drives the
# seed-granular corpus end to end: a cold seeds=8 sweep, a grown seeds=16
# sweep that must be a partial hit computing exactly 8 new seeds, a repeat
# that must be a byte-identical full hit, and a second cold daemon whose
# from-scratch seeds=16 body must equal the assembled one byte for byte.
# Along the way it scrapes /metrics, validates the exposition grammar line by
# line, and checks the scheduler mirror agrees with /v1/stats.
# Run by `make daemon-smoke` and by CI.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
logfile="$workdir/udcd.log"
pid=""
pid2=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/udcd" ./cmd/udcd

# boot_daemon logfile storedir — sets $bootpid and the announced $base URL.
boot_daemon() {
    "$workdir/udcd" -addr 127.0.0.1:0 -store "$2" >"$1" 2>&1 &
    bootpid=$!
    base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's#^udcd listening on \(http://[0-9.:]*\).*#\1#p' "$1")"
        [ -n "$base" ] && break
        kill -0 "$bootpid" 2>/dev/null || { echo "udcd exited early:"; cat "$1"; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "udcd never announced its address:"; cat "$1"; exit 1; }
}

boot_daemon "$logfile" "$workdir/store"
pid=$bootpid
echo "daemon up at $base"

curl -sf "$base/healthz" >/dev/null

# Cold prime: 8 seeds.
curl -sf -D "$workdir/h8" -o "$workdir/b8" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=8"
grep -qi '^x-cache: miss' "$workdir/h8" || { echo "cold seeds=8 was not a miss:"; cat "$workdir/h8"; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"seedsComputed":8,' || { echo "stats after cold seeds=8 disagree:"; curl -sf "$base/v1/stats"; exit 1; }

# Grown window: 16 seeds over the same base must be a partial hit that
# computes exactly the 8 new seeds (16 total across both requests).
curl -sf -D "$workdir/h16" -o "$workdir/b16" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^x-cache: partial' "$workdir/h16" || { echo "grown seeds=16 was not a partial hit:"; cat "$workdir/h16"; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"seedsComputed":16,' || { echo "grown sweep did not compute exactly 8 new seeds:"; curl -sf "$base/v1/stats"; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"seedsCached":8,' || { echo "grown sweep did not reuse the 8 primed seeds:"; curl -sf "$base/v1/stats"; exit 1; }

# The identical window again: a byte-identical full hit.
curl -sf -D "$workdir/h16b" -o "$workdir/b16b" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^x-cache: hit' "$workdir/h16b" || { echo "repeated seeds=16 was not a hit:"; cat "$workdir/h16b"; exit 1; }
cmp "$workdir/b16" "$workdir/b16b" || { echo "cache hit body differs from assembled body"; exit 1; }

# The daemon's own counter summary agrees (udcd -stats against the live daemon).
"$workdir/udcd" -stats -addr "${base#http://}" | grep -q 'partialHits=1' || { echo "-stats does not report the partial hit"; exit 1; }

# Served responses carry the scheduler's stage trace.
grep -qi '^server-timing: .*total;dur=' "$workdir/h16b" || { echo "sweep response lacks a Server-Timing trace:"; cat "$workdir/h16b"; exit 1; }

# The /metrics exposition: every line must match the v0.0.4 grammar (HELP/TYPE
# comment, sample, or blank), and the scheduler mirror must agree with the
# seed accounting /v1/stats reported above.
curl -sf "$base/metrics" >"$workdir/metrics.txt"
bad="$(grep -vE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9][0-9eE+.-]*|\+Inf|-Inf|NaN)( [0-9]+)?|)$' "$workdir/metrics.txt" || true)"
[ -z "$bad" ] || { echo "malformed exposition lines:"; echo "$bad"; exit 1; }
grep -q '^udc_scheduler_seeds_computed_total 16$' "$workdir/metrics.txt" || { echo "/metrics seeds_computed disagrees with /v1/stats (want 16):"; grep seeds_computed "$workdir/metrics.txt"; exit 1; }

# A cold daemon over a fresh store must compute the same 16-seed body byte
# for byte — the assembled partial-hit response is indistinguishable from a
# from-scratch computation.
boot_daemon "$workdir/udcd2.log" "$workdir/store2"
pid2=$bootpid
echo "cold reference daemon up at $base"
curl -sf -D "$workdir/h16c" -o "$workdir/b16c" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^x-cache: miss' "$workdir/h16c" || { echo "reference seeds=16 was not a miss:"; cat "$workdir/h16c"; exit 1; }
cmp "$workdir/b16" "$workdir/b16c" || { echo "partial-hit body differs from a cold daemon's computation"; exit 1; }

echo "daemon smoke OK: partial-hit assembly byte-identical to cold computation, 8 seeds reused"
