#!/bin/sh
# daemon_smoke.sh — end-to-end smoke of the udcd serving layer.
#
# Boots the daemon on a random port with a throwaway store and drives the
# seed-granular corpus end to end: a cold seeds=8 sweep, a grown seeds=16
# sweep that must be a partial hit computing exactly 8 new seeds, a repeat
# that must be a byte-identical full hit, and a second cold daemon whose
# from-scratch seeds=16 body must equal the assembled one byte for byte.
# Along the way it scrapes /metrics, validates the exposition grammar line by
# line, and checks the scheduler mirror agrees with /v1/stats.  Two more legs
# cover the wire protocol and admission control: the NDJSON stream must carry
# one record per seed plus a trailer whose aggregate is byte-identical to the
# buffered body minus its outcomes (with the binary body materially smaller),
# a request issued with a W3C traceparent must be retrievable from
# /debug/traces/<id> with the same stage names its Server-Timing header
# carried, and a rate-limited daemon must shed a burst with 429 + Retry-After
# while counting the sheds honestly on /metrics.
# Run by `make daemon-smoke` and by CI.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
logfile="$workdir/udcd.log"
pid=""
pid2=""
pid3=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    [ -n "$pid2" ] && kill "$pid2" 2>/dev/null || true
    [ -n "$pid3" ] && kill "$pid3" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/udcd" ./cmd/udcd

# boot_daemon logfile storedir [flags...] — sets $bootpid and the announced
# $base URL.
boot_daemon() {
    bootlog="$1"
    bootstore="$2"
    shift 2
    "$workdir/udcd" -addr 127.0.0.1:0 -store "$bootstore" "$@" >"$bootlog" 2>&1 &
    bootpid=$!
    base=""
    for _ in $(seq 1 100); do
        base="$(sed -n 's#^udcd listening on \(http://[0-9.:]*\).*#\1#p' "$bootlog")"
        [ -n "$base" ] && break
        kill -0 "$bootpid" 2>/dev/null || { echo "udcd exited early:"; cat "$bootlog"; exit 1; }
        sleep 0.1
    done
    [ -n "$base" ] || { echo "udcd never announced its address:"; cat "$bootlog"; exit 1; }
}

boot_daemon "$logfile" "$workdir/store"
pid=$bootpid
echo "daemon up at $base"

curl -sf "$base/healthz" >/dev/null

# Cold prime: 8 seeds.
curl -sf -D "$workdir/h8" -o "$workdir/b8" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=8"
grep -qi '^x-cache: miss' "$workdir/h8" || { echo "cold seeds=8 was not a miss:"; cat "$workdir/h8"; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"seedsComputed":8,' || { echo "stats after cold seeds=8 disagree:"; curl -sf "$base/v1/stats"; exit 1; }

# Grown window: 16 seeds over the same base must be a partial hit that
# computes exactly the 8 new seeds (16 total across both requests).
curl -sf -D "$workdir/h16" -o "$workdir/b16" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^x-cache: partial' "$workdir/h16" || { echo "grown seeds=16 was not a partial hit:"; cat "$workdir/h16"; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"seedsComputed":16,' || { echo "grown sweep did not compute exactly 8 new seeds:"; curl -sf "$base/v1/stats"; exit 1; }
curl -sf "$base/v1/stats" | grep -q '"seedsCached":8,' || { echo "grown sweep did not reuse the 8 primed seeds:"; curl -sf "$base/v1/stats"; exit 1; }

# The identical window again: a byte-identical full hit.
curl -sf -D "$workdir/h16b" -o "$workdir/b16b" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^x-cache: hit' "$workdir/h16b" || { echo "repeated seeds=16 was not a hit:"; cat "$workdir/h16b"; exit 1; }
cmp "$workdir/b16" "$workdir/b16b" || { echo "cache hit body differs from assembled body"; exit 1; }

# The daemon's own counter summary agrees (udcd -stats against the live daemon).
"$workdir/udcd" -stats -addr "${base#http://}" | grep -q 'partialHits=1' || { echo "-stats does not report the partial hit"; exit 1; }

# Served responses carry the scheduler's stage trace.
grep -qi '^server-timing: .*total;dur=' "$workdir/h16b" || { echo "sweep response lacks a Server-Timing trace:"; cat "$workdir/h16b"; exit 1; }

# The /metrics exposition: every line must match the v0.0.4 grammar (HELP/TYPE
# comment, sample, or blank), and the scheduler mirror must agree with the
# seed accounting /v1/stats reported above.
curl -sf "$base/metrics" >"$workdir/metrics.txt"
bad="$(grep -vE '^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9][0-9eE+.-]*|\+Inf|-Inf|NaN)( [0-9]+)?|)$' "$workdir/metrics.txt" || true)"
[ -z "$bad" ] || { echo "malformed exposition lines:"; echo "$bad"; exit 1; }
grep -q '^udc_scheduler_seeds_computed_total 16$' "$workdir/metrics.txt" || { echo "/metrics seeds_computed disagrees with /v1/stats (want 16):"; grep seeds_computed "$workdir/metrics.txt"; exit 1; }

# Tracing leg: a sweep issued with a client-supplied W3C traceparent must echo
# that trace identity in X-Trace-Id, and /debug/traces/<id> must serve the
# finished trace with exactly the stage names the Server-Timing header carried.
traceid="4bf92f3577b34da6a3ce929d0e0e4736"
curl -sf -H "traceparent: 00-$traceid-00f067aa0ba902b7-01" -D "$workdir/htrace" -o /dev/null \
    "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=8&seedBase=77"
grep -qi "^x-trace-id: $traceid" "$workdir/htrace" || { echo "X-Trace-Id does not echo the supplied traceparent:"; cat "$workdir/htrace"; exit 1; }
curl -sf "$base/debug/traces/$traceid" >"$workdir/trace.json"
tr -d '\r' <"$workdir/htrace" | sed -n 's/^[Ss]erver-[Tt]iming: //p' | tr ',' '\n' \
    | sed -n 's/^ *\([a-z]*\);dur=.*$/\1/p' | grep -v '^total$' | sort -u >"$workdir/stages.header"
grep -o '"name":"[a-z]*"' "$workdir/trace.json" | sed 's/.*"\([a-z]*\)"$/\1/' | sort -u >"$workdir/stages.trace"
[ -s "$workdir/stages.header" ] || { echo "no stages parsed from Server-Timing:"; cat "$workdir/htrace"; exit 1; }
cmp "$workdir/stages.header" "$workdir/stages.trace" || {
    echo "trace stages differ from Server-Timing stages:"
    echo "header:"; cat "$workdir/stages.header"
    echo "trace:"; cat "$workdir/stages.trace"
    exit 1
}

# Streaming leg: the NDJSON stream over the primed window must carry one
# record per seed plus a trailer record, and the trailer's aggregate must be
# byte-identical to the buffered body minus its outcomes array.
curl -sfN -H 'Accept: application/x-ndjson' -D "$workdir/hstream" -o "$workdir/stream16" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^content-type: application/x-ndjson' "$workdir/hstream" || { echo "stream lacks the NDJSON content type:"; cat "$workdir/hstream"; exit 1; }
lines="$(wc -l < "$workdir/stream16")"
[ "$lines" -eq 17 ] || { echo "NDJSON stream carried $lines lines, want 16 outcomes + 1 trailer"; exit 1; }
tail -n 1 "$workdir/stream16" | grep -q '^{"trailer":' || { echo "stream did not end in a trailer record:"; tail -n 1 "$workdir/stream16"; exit 1; }
sed 's/,"outcomes":.*$/}/' "$workdir/b16" >"$workdir/agg.want"
tail -n 1 "$workdir/stream16" | sed 's/^{"trailer":{"aggregate"://; s/,"trace":.*$//' >"$workdir/agg.got"
cmp "$workdir/agg.want" "$workdir/agg.got" || { echo "stream trailer aggregate differs from the buffered aggregate:"; cat "$workdir/agg.want" "$workdir/agg.got"; exit 1; }

# Binary leg: the negotiated binary body is the codec container, materially
# smaller than the JSON rendering of the same record.
curl -sf -H 'Accept: application/x-udc-bin' -D "$workdir/hbin" -o "$workdir/bin16" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^content-type: application/x-udc-bin' "$workdir/hbin" || { echo "binary sweep lacks its content type:"; cat "$workdir/hbin"; exit 1; }
binsize="$(wc -c < "$workdir/bin16")"
jsonsize="$(wc -c < "$workdir/b16")"
[ "$binsize" -lt "$((jsonsize / 2))" ] || { echo "binary body ($binsize bytes) not materially smaller than JSON ($jsonsize bytes)"; exit 1; }

# A cold daemon over a fresh store must compute the same 16-seed body byte
# for byte — the assembled partial-hit response is indistinguishable from a
# from-scratch computation.
boot_daemon "$workdir/udcd2.log" "$workdir/store2"
pid2=$bootpid
echo "cold reference daemon up at $base"
curl -sf -D "$workdir/h16c" -o "$workdir/b16c" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
grep -qi '^x-cache: miss' "$workdir/h16c" || { echo "reference seeds=16 was not a miss:"; cat "$workdir/h16c"; exit 1; }
cmp "$workdir/b16" "$workdir/b16c" || { echo "partial-hit body differs from a cold daemon's computation"; exit 1; }

# Admission leg: a rate-limited daemon (1 req/s, burst 2) must shed part of a
# 5-request burst with 429 + Retry-After, count the sheds on /metrics, and
# label the 429s honestly on the HTTP counter.
boot_daemon "$workdir/udcd3.log" "$workdir/store3" -rate-limit 1 -rate-burst 2
pid3=$bootpid
echo "rate-limited daemon up at $base"
shed=0
for i in 1 2 3 4 5; do
    code="$(curl -s -o /dev/null -D "$workdir/hadm$i" -w '%{http_code}' "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=2")"
    case "$code" in
        200) ;;
        429) shed=$((shed + 1)); grep -qi '^retry-after: [0-9]' "$workdir/hadm$i" || { echo "429 without a Retry-After hint:"; cat "$workdir/hadm$i"; exit 1; } ;;
        *) echo "burst request $i answered HTTP $code"; exit 1 ;;
    esac
done
[ "$shed" -ge 1 ] || { echo "a 5-request burst against burst-2 rate-1/s never shed"; exit 1; }
curl -sf "$base/metrics" >"$workdir/metrics3.txt"
grep -q "^udc_admission_rate_limited_total $shed\$" "$workdir/metrics3.txt" || { echo "/metrics rate-limited counter disagrees (want $shed):"; grep rate_limited "$workdir/metrics3.txt"; exit 1; }
grep -q 'udc_http_requests_total{route="/v1/sweep",code="429"}' "$workdir/metrics3.txt" || { echo "429s missing from the HTTP counter:"; grep udc_http_requests_total "$workdir/metrics3.txt"; exit 1; }

echo "daemon smoke OK: partial-hit assembly byte-identical to cold computation, 8 seeds reused, stream trailer matches buffered aggregate, trace stages match Server-Timing, $shed/5 burst requests shed with 429"
