#!/bin/sh
# daemon_smoke.sh — end-to-end smoke of the udcd serving layer.
#
# Boots the daemon on a random port with a throwaway store, waits for the
# announced URL, checks /healthz, issues the same sweep twice, and asserts
# the second response is a cache hit with a byte-identical body.  Run by
# `make daemon-smoke` and by CI.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
logfile="$workdir/udcd.log"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/udcd" ./cmd/udcd
"$workdir/udcd" -addr 127.0.0.1:0 -store "$workdir/store" >"$logfile" 2>&1 &
pid=$!

# Wait for the startup line announcing the resolved URL.
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's#^udcd listening on \(http://[0-9.:]*\).*#\1#p' "$logfile")"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "udcd exited early:"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "udcd never announced its address:"; cat "$logfile"; exit 1; }
echo "daemon up at $base"

curl -sf "$base/healthz" >/dev/null

req="$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=16"
curl -sf -D "$workdir/h1" -o "$workdir/b1" "$req"
curl -sf -D "$workdir/h2" -o "$workdir/b2" "$req"

grep -qi '^x-cache: miss' "$workdir/h1" || { echo "first response was not a cache miss:"; cat "$workdir/h1"; exit 1; }
grep -qi '^x-cache: hit' "$workdir/h2" || { echo "second response was not a cache hit:"; cat "$workdir/h2"; exit 1; }
cmp "$workdir/b1" "$workdir/b2" || { echo "cache hit body differs from computed body"; exit 1; }

# The daemon's own counters agree: one computation, one hit.
curl -sf "$base/v1/stats" | grep -q '"computed":1' || { echo "stats disagree:"; curl -sf "$base/v1/stats"; exit 1; }

echo "daemon smoke OK: second sweep served from cache, byte-identical"
