#!/bin/sh
# fleet_smoke.sh — end-to-end smoke of udcd fleet mode and graceful drain.
#
# Boots a 3-peer fleet over throwaway stores and drives the robustness story
# end to end: a healthy fleet sweep whose seeds fan out to the peers' claim
# RPCs, a cold single-node reference daemon proving the fleet body is
# byte-identical to a from-scratch computation, a kill -9 of one peer followed
# by a fresh sweep that must degrade to local recompute — same bytes, with
# udc_fleet_peer_failures_total counting the failures on /metrics — and a
# SIGTERM drain of the coordinator that must exit cleanly with /healthz alive
# while /readyz and new work answer 503.
# Run by `make fleet-smoke` and by CI.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
pids=""

cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/udcd" ./cmd/udcd

# wait_up url logfile pid — poll /healthz until the daemon answers.
wait_up() {
    for _ in $(seq 1 100); do
        curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$3" 2>/dev/null || { echo "udcd exited early:"; cat "$2"; exit 1; }
        sleep 0.1
    done
    echo "udcd at $1 never answered /healthz:"; cat "$2"; exit 1
}

# Fixed ports, because every peer must know the full membership before any of
# them is up.  Derive from the PID and retry a few bases on collision.
fleet_up=""
for try in 0 1 2 3 4; do
    baseport=$(( 20000 + ($$ + try * 531) % 20000 ))
    p1=$baseport; p2=$((baseport + 1)); p3=$((baseport + 2))
    peers="http://127.0.0.1:$p1,http://127.0.0.1:$p2,http://127.0.0.1:$p3"
    trypids=""
    ok=1
    for port in $p1 $p2 $p3; do
        "$workdir/udcd" -addr "127.0.0.1:$port" -store "$workdir/store$port" \
            -fleet-self "http://127.0.0.1:$port" -fleet-peers "$peers" \
            >"$workdir/udcd$port.log" 2>&1 &
        trypids="$trypids $!"
    done
    sleep 0.3
    for port in $p1 $p2 $p3; do
        grep -q "listening on" "$workdir/udcd$port.log" || ok=0
    done
    if [ "$ok" = 1 ]; then
        pids="$trypids"
        fleet_up=1
        break
    fi
    for p in $trypids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
done
[ -n "$fleet_up" ] || { echo "could not find three free ports for the fleet"; exit 1; }

coord="http://127.0.0.1:$p1"
set -- $pids
coordpid=$1; peer2pid=$2; peer3pid=$3
wait_up "$coord" "$workdir/udcd$p1.log" "$coordpid"
wait_up "http://127.0.0.1:$p2" "$workdir/udcd$p2.log" "$peer2pid"
wait_up "http://127.0.0.1:$p3" "$workdir/udcd$p3.log" "$peer3pid"
echo "3-peer fleet up at $peers"

# The membership agrees on the shard layout.
curl -sf "$coord/v1/fleet" | grep -q '"enabled":true' || { echo "/v1/fleet not enabled:"; curl -sf "$coord/v1/fleet"; exit 1; }

# Healthy fleet sweep: 32 seeds fan out across the three owners.
curl -sf -D "$workdir/h1" -o "$workdir/fleet1" "$coord/v1/sweep?scenario=prop3.1-strong-udc&seeds=32"
grep -qi '^x-cache: miss' "$workdir/h1" || { echo "cold fleet sweep was not a miss:"; cat "$workdir/h1"; exit 1; }
curl -sf "$coord/v1/fleet" | grep -q '"seedsRemote":0' && { echo "fleet sweep resolved no seeds remotely:"; curl -sf "$coord/v1/fleet"; exit 1; }

# Cold single-node reference: the fleet-assembled body must be byte-identical
# to a from-scratch single daemon's.
"$workdir/udcd" -addr 127.0.0.1:0 -store "$workdir/refstore" >"$workdir/ref.log" 2>&1 &
refpid=$!
pids="$pids $refpid"
refbase=""
for _ in $(seq 1 100); do
    refbase="$(sed -n 's#^udcd listening on \(http://[0-9.:]*\).*#\1#p' "$workdir/ref.log")"
    [ -n "$refbase" ] && break
    sleep 0.1
done
[ -n "$refbase" ] || { echo "reference daemon never announced:"; cat "$workdir/ref.log"; exit 1; }
curl -sf -o "$workdir/ref1" "$refbase/v1/sweep?scenario=prop3.1-strong-udc&seeds=32"
cmp "$workdir/fleet1" "$workdir/ref1" || { echo "healthy fleet body differs from a cold single daemon's"; exit 1; }
echo "healthy fleet sweep byte-identical to cold single-node computation"

# Kill one peer outright (a crash, not a drain) and sweep a fresh window: the
# coordinator must retry, give up, recompute the dead peer's seeds locally,
# and still serve the exact cold-daemon bytes.
kill -9 "$peer3pid" 2>/dev/null
wait "$peer3pid" 2>/dev/null || true
curl -sf -o "$workdir/fleet2" "$coord/v1/sweep?scenario=prop3.1-strong-udc&seeds=32&seedBase=500"
curl -sf -o "$workdir/ref2" "$refbase/v1/sweep?scenario=prop3.1-strong-udc&seeds=32&seedBase=500"
cmp "$workdir/fleet2" "$workdir/ref2" || { echo "degraded fleet body differs from a cold single daemon's"; exit 1; }
curl -sf "$coord/metrics" >"$workdir/metrics.txt"
grep -E '^udc_fleet_peer_failures_total\{peer="[^"]+"\} [1-9]' "$workdir/metrics.txt" >/dev/null \
    || { echo "no nonzero udc_fleet_peer_failures_total after the kill:"; grep udc_fleet_peer "$workdir/metrics.txt" || true; exit 1; }
echo "peer-killed sweep byte-identical with failures counted on /metrics"

# Graceful drain: SIGTERM the coordinator; liveness holds while readiness and
# new work flip to 503, and the process exits reporting a clean drain.
kill -TERM "$coordpid"
sleep 0.2
for _ in $(seq 1 50); do
    kill -0 "$coordpid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$coordpid" 2>/dev/null; then
    echo "coordinator did not exit within the drain window:"; cat "$workdir/udcd$p1.log"; exit 1
fi
grep -q "drained cleanly" "$workdir/udcd$p1.log" || { echo "coordinator did not drain cleanly:"; cat "$workdir/udcd$p1.log"; exit 1; }

# The surviving peer still serves, and sheds its own work once draining.
curl -sf "http://127.0.0.1:$p2/readyz" | grep -q '"ready":true' || { echo "surviving peer not ready"; exit 1; }

echo "fleet smoke OK: healthy + degraded sweeps byte-identical to a cold daemon, peer failures on /metrics, coordinator drained cleanly on SIGTERM"
