#!/bin/sh
# metrics_smoke.sh — smoke of the udcd observability surface.
#
# Boots the daemon on a random port, drives one sweep and one extraction so
# the counters are alive, then asserts: /metrics serves the required metric
# families (including the per-stage duration histograms), two idle scrapes
# are byte-identical, and both corpus-backed routes answer with a
# Server-Timing stage trace and an X-Trace-Id trace identity.
# Run by `make metrics-smoke` and by CI.
set -eu

GO="${GO:-go}"
workdir="$(mktemp -d)"
logfile="$workdir/udcd.log"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

$GO build -o "$workdir/udcd" ./cmd/udcd

"$workdir/udcd" -addr 127.0.0.1:0 -store "" >"$logfile" 2>&1 &
pid=$!
base=""
for _ in $(seq 1 100); do
    base="$(sed -n 's#^udcd listening on \(http://[0-9.:]*\).*#\1#p' "$logfile")"
    [ -n "$base" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "udcd exited early:"; cat "$logfile"; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "udcd never announced its address:"; cat "$logfile"; exit 1; }
echo "daemon up at $base"

curl -sf -D "$workdir/hsweep" "$base/v1/sweep?scenario=prop3.1-strong-udc&seeds=4" >/dev/null
curl -sf -D "$workdir/hextract" "$base/v1/extract?extraction=kx-perfect&runs=6" >/dev/null
grep -qi '^server-timing: .*compute;dur=' "$workdir/hsweep" || { echo "sweep lacks Server-Timing:"; cat "$workdir/hsweep"; exit 1; }
grep -qi '^server-timing: .*compute;dur=' "$workdir/hextract" || { echo "extract lacks Server-Timing:"; cat "$workdir/hextract"; exit 1; }
grep -qi '^x-trace-id: [0-9a-f]\{32\}' "$workdir/hsweep" || { echo "sweep lacks X-Trace-Id:"; cat "$workdir/hsweep"; exit 1; }
grep -qi '^x-trace-id: [0-9a-f]\{32\}' "$workdir/hextract" || { echo "extract lacks X-Trace-Id:"; cat "$workdir/hextract"; exit 1; }

curl -sf "$base/metrics" >"$workdir/m1"
for family in \
    udc_http_requests_total \
    udc_http_request_duration_seconds \
    udc_stage_duration_seconds \
    udc_scheduler_requests_total \
    udc_scheduler_requests_served_total \
    udc_scheduler_seeds_requested_total \
    udc_scheduler_seeds_cached_total \
    udc_scheduler_seeds_computed_total \
    udc_scheduler_seeds_coalesced_total \
    udc_scheduler_batches_total \
    udc_scheduler_queue_depth \
    udc_store_hits_total \
    udc_store_misses_total \
    udc_store_puts_total \
    udc_fleet_inflight_seeds \
    udc_fleet_busy_workers \
    udc_start_time_seconds \
    udc_info; do
    grep -q "^# TYPE $family " "$workdir/m1" || { echo "/metrics lacks family $family"; exit 1; }
done

# An idle daemon must scrape byte-identically: /metrics is uninstrumented and
# carries no clock-dependent sample.
curl -sf "$base/metrics" >"$workdir/m2"
cmp "$workdir/m1" "$workdir/m2" || { echo "two idle scrapes differ"; exit 1; }

echo "metrics smoke OK: $(grep -c '^# TYPE ' "$workdir/m1") families, deterministic scrape, Server-Timing and X-Trace-Id on both routes"
